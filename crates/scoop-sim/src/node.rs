//! The per-node protocol state machine.
//!
//! A single type, [`SimNode`], implements every storage policy the paper
//! compares (SCOOP, LOCAL, BASE, HASH) plus the basestation role, as an
//! event-driven [`NodeLogic`] for the discrete-event engine:
//!
//! * every node participates in tree routing (periodic beacons, link
//!   estimation by snooping, parent selection);
//! * sensors sample their data source on the configured interval and route
//!   readings according to the policy (storage index lookup + the six
//!   routing rules for SCOOP/HASH/BASE, local storage for LOCAL);
//! * SCOOP sensors additionally send periodic summaries up the tree and
//!   assemble storage indices from mapping chunks;
//! * the basestation collects summaries, rebuilds and disseminates the
//!   storage index every remap interval (SCOOP), issues queries, and gathers
//!   replies.
//!
//! Mapping chunks and queries are disseminated by polite gossip: a node
//! re-broadcasts an item it has not seen before once, after a short random
//! delay, unless it overhears enough copies from its neighbors first — the
//! same suppression idea Trickle uses, specialized to the single-round case.
//!
//! The engine payload is `Arc<ScoopPayload>` (see [`SharedPayload`]): the
//! engine clones one packet per listener per transmission attempt, so with a
//! plain enum payload every broadcast, snooped unicast, forwarded packet, and
//! gossip re-broadcast deep-copied readings, histograms, and index chunks.
//! Behind an `Arc` that fan-out is a reference-count bump; the payload body
//! is cloned only at the single point that needs ownership (a data message
//! being unbatched at its destination, a summary entering the basestation's
//! statistics).

use scoop_core::histogram::SummaryHistogram;
use scoop_core::index::IndexBuilderConfig;
use scoop_core::index::IndexDecision;
use scoop_core::index::IndexEntry;
use scoop_core::routing_rules::{route_data, DataRoutingAction, LocalNodeView};
use scoop_core::summary::ReportedNeighbor;
use scoop_core::{
    CostParams, DataMessage, IndexBuilder, MappingChunk, QueryMessage, QueryPlanner, ReplyMessage,
    ScoopPayload, SinkAliveMessage, StatsStore, StorageIndex, SummaryMessage,
};
use scoop_net::{NodeCtx, NodeLogic, Packet, TimerToken};
use scoop_routing::{RoutingConfig, RoutingState};
use scoop_storage::{DataBuffer, RecentReadings};
use scoop_trickle::{ChunkAssembler, Chunker};
use scoop_types::{
    ExperimentConfig, MessageKind, NodeBitmap, NodeId, PartialAggregate, Reading, SimDuration,
    SimTime, StorageIndexId, StoragePolicy, ValueRange,
};
use scoop_workload::{DataSource, QueryGenerator};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// The engine-level payload type: one shared allocation per application
/// message, so the engine's per-listener packet clones are pointer bumps.
pub type SharedPayload = Arc<ScoopPayload>;

// Timer tokens.
const TICK_BEACON: TimerToken = 1;
const TICK_SAMPLE: TimerToken = 2;
const TICK_SUMMARY: TimerToken = 3;
const TICK_REMAP: TimerToken = 4;
const TICK_QUERY: TimerToken = 5;
const TICK_MAINTENANCE: TimerToken = 6;
const TICK_GOSSIP: TimerToken = 7;
/// Timer token reserved for the external serving tier: `scoop-serve` injects
/// one `TimerFire` with this token into the basestation per admission tick
/// (via `Engine::inject_timer`), so every admitted query batch is an ordinary
/// event in the deterministic stream. Public because the injector lives in a
/// different crate; nodes never arm it themselves.
pub const TICK_SERVE: TimerToken = 8;
/// One-shot hold-and-merge flush for in-network tree aggregation (LOCAL
/// aggregate workloads only). Armed with a fixed depth-scaled delay — no
/// jitter — so aggregate runs consume exactly the same RNG stream as the
/// seed workloads.
const TICK_AGG: TimerToken = 9;

/// Per-hop step of the aggregation hold timer: a node at depth `d` flushes
/// its merged partial after `(MAX_FORWARD_HOPS - d) * AGG_HOLD_STEP_MS`, so
/// deeper nodes flush first and each parent can fold its children's partials
/// into one upward message (TAG-style epoch scheduling). The worst-case hold
/// (depth 0 is the sink itself, depth 1 waits ~3.5 s) stays far below the
/// 15-second query interval.
const AGG_HOLD_STEP_MS: u64 = 150;

/// Interval between routing-tree beacons.
const BEACON_INTERVAL: SimDuration = SimDuration::from_secs(25);
/// Interval between routing-table maintenance passes.
const MAINTENANCE_INTERVAL: SimDuration = SimDuration::from_secs(60);
/// Maximum random delay before re-broadcasting a gossiped item.
const GOSSIP_DELAY_MS: u64 = 400;
/// A gossiped item is suppressed once this many copies have been overheard
/// while it waits in the queue.
const GOSSIP_SUPPRESSION: u32 = 2;
/// Maximum number of times one application packet may be forwarded. Transient
/// routing loops (stale descendants entries, tree churn) are broken by
/// storing the data wherever it happens to be once the budget is exhausted,
/// or dropping the packet for query replies and summaries.
const MAX_FORWARD_HOPS: u8 = 24;
/// Capacity of each node's data buffer, in readings. Far larger than anything
/// a 40-minute run produces; the flash model justifies ~670k per MB.
const DATA_BUFFER_CAP: usize = 65_536;

/// Per-node counters the harness reads out after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeLocalMetrics {
    /// Readings sampled by this node.
    pub sampled: u64,
    /// Readings stored in this node's data buffer.
    pub stored: u64,
    /// Readings stored here because this node was the designated owner.
    pub stored_as_owner: u64,
    /// Readings stored here by the basestation fallback (rule 4).
    pub stored_base_fallback: u64,
    /// Readings stored locally because the node had no index or no route.
    pub stored_local_default: u64,
    /// Replies this node sent.
    pub replies_sent: u64,
    /// Serving-tier admission ticks dispatched to this node (injected by
    /// `scoop-serve`; always 0 in plain simulation runs).
    pub serve_ticks: u64,
}

/// Basestation-side query bookkeeping.
#[derive(Clone, Debug)]
struct QueryOutcome {
    targets: u64,
    replies: u64,
    readings: u64,
    /// The issued predicate, kept so model tests can check answers against a
    /// god's-eye evaluator without replaying the generator.
    values: ValueRange,
    time_lo: SimTime,
    time_hi: SimTime,
    /// Aggregate queries only: the partials merged at the sink so far.
    aggregate: Option<PartialAggregate>,
}

/// One issued query's final outcome, as read out by tests and harnesses
/// (see [`SimNode::query_records`]).
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// The query id on the wire.
    pub query_id: u32,
    /// Value range the query asked for.
    pub values: ValueRange,
    /// Earliest timestamp of interest.
    pub time_lo: SimTime,
    /// Latest timestamp of interest.
    pub time_hi: SimTime,
    /// Nodes the query targeted.
    pub targets: u64,
    /// Replies (or merged partial-aggregate messages) that reached the sink.
    pub replies: u64,
    /// Readings returned (for aggregates: readings folded into partials).
    pub readings: u64,
    /// Aggregate queries only: the sink's merged answer.
    pub aggregate: Option<PartialAggregate>,
}

/// State only a sink (basestation) carries.
struct BaseState {
    stats: StatsStore,
    planner: QueryPlanner,
    query_gen: QueryGenerator,
    next_query_id: u32,
    next_index_id: StorageIndexId,
    /// Stride between consecutive ids issued here: 1 classically; in the
    /// multi-sink federation the query stride is the sink count and the
    /// index stride is [`RANK_STRIDE`], so ids never collide across sinks
    /// and `id % RANK_STRIDE` recovers the issuing sink's rank.
    query_id_stride: u32,
    index_id_stride: u32,
    last_disseminated: Option<StorageIndex>,
    outstanding: HashMap<u32, QueryOutcome>,
    indices_disseminated: u64,
    remaps_suppressed: u64,
    queries_answered_locally: u64,
    /// Federation state; `None` in the classic single-sink mode.
    multi: Option<MultiSinkState>,
}

/// Index ids advance by this stride per sink in multi-sink mode, reserving
/// the low bits for the issuing sink's rank (`MAX_SINKS` ranks).
const RANK_STRIDE: u32 = 64;

/// Per-sink federation state: liveness tracking for the peers.
struct MultiSinkState {
    /// This sink's rank in the sorted sink list.
    rank: usize,
    /// Epoch of the next liveness beacon; strictly increasing.
    epoch: u64,
    /// When each rank was last heard from (beacon or mapping chunk). `None`
    /// until first contact, which counts as "alive" — the grace period that
    /// stops every sink from "failing over" at startup.
    last_heard: Vec<Option<SimTime>>,
}

impl MultiSinkState {
    /// Ranks considered alive at `now`: self, plus every peer heard from
    /// within the failover timeout (or not yet expected to have spoken).
    fn live_ranks(&self, now: SimTime, timeout: SimDuration) -> Vec<usize> {
        (0..self.last_heard.len())
            .filter(|&r| {
                r == self.rank || now.since(self.last_heard[r].unwrap_or(SimTime::ZERO)) <= timeout
            })
            .collect()
    }
}

/// Which live sink rank owns value `v`: the existing hash, reduced over the
/// live ranks in ascending order. Every value always has exactly one owner,
/// and a dead sink's share redistributes deterministically over the
/// survivors.
fn owning_rank(v: scoop_types::Value, live: &[usize]) -> usize {
    live[(scoop_core::baselines::splitmix(v as u64) % live.len() as u64) as usize]
}

/// Restricts `index` to the maximal runs of consecutive values that `rank`
/// owns under the live-rank hash partition, preserving each run's owner.
/// Empty when the peers own everything this index covers.
fn filter_entries_to_rank(index: &StorageIndex, rank: usize, live: &[usize]) -> Vec<IndexEntry> {
    let mut owned: Vec<IndexEntry> = Vec::new();
    for entry in index.entries() {
        let mut v = entry.range.lo;
        loop {
            if owning_rank(v, live) == rank {
                match owned.last_mut() {
                    Some(last) if last.owner == entry.owner && last.range.hi + 1 == v => {
                        last.range.hi = v;
                    }
                    _ => owned.push(IndexEntry {
                        range: ValueRange::point(v),
                        owner: entry.owner,
                    }),
                }
            }
            if v == entry.range.hi {
                break;
            }
            v += 1;
        }
    }
    owned
}

/// One sink rank's chunk assembler plus the pending domain/created-at
/// metadata of the index it is currently assembling.
type RankAssembler = (ChunkAssembler<IndexEntry>, Option<(ValueRange, SimTime)>);

/// The per-node protocol state machine (see module docs).
pub struct SimNode {
    id: NodeId,
    cfg: Arc<ExperimentConfig>,
    routing: RoutingState,
    recent: RecentReadings,
    buffer: DataBuffer,
    source: Box<dyn DataSource>,
    rng: StdRng,
    /// Newest complete storage index this node holds.
    current_index: Option<StorageIndex>,
    assembler: ChunkAssembler<IndexEntry>,
    assembling_meta: Option<(ValueRange, SimTime)>,
    /// Readings batched for the same owner, waiting to be sent.
    batch: Vec<Reading>,
    batch_dest: Option<(NodeId, StorageIndexId)>,
    /// Queries already processed (deduplication for gossip).
    seen_queries: HashSet<u32>,
    /// Mapping chunks already gossiped, keyed by (index id, chunk index).
    seen_chunks: HashSet<(u64, u32)>,
    /// Items waiting to be re-broadcast, with a count of copies overheard.
    /// The payloads are the shared `Arc`s the packets arrived with, so a
    /// re-broadcast reuses the original allocation.
    pending_gossip: VecDeque<(SharedPayload, MessageKind, u32)>,
    gossip_timer_armed: bool,
    base: Option<BaseState>,
    /// The sorted sink set in multi-sink mode; empty classically. Non-empty
    /// switches every node to per-rank index assembly and sink-liveness
    /// gossip.
    sinks: Vec<NodeId>,
    /// Multi-sink only: one chunk assembler (and pending domain/created-at
    /// metadata) per sink rank, because each sink versions its own chunk
    /// stream and a single assembler would let the streams preempt each
    /// other.
    rank_assemblers: Vec<RankAssembler>,
    /// Multi-sink only: the newest complete index per sink rank. Owner
    /// lookups scan these newest-first; `current_index` mirrors the newest
    /// overall so the routing rules keep working unchanged.
    sink_indices: Vec<Option<StorageIndex>>,
    /// Sink-liveness beacons already gossiped, keyed by (sink, epoch).
    seen_alive: HashSet<(u16, u64)>,
    /// In-network tree aggregation (LOCAL aggregate workloads): partials
    /// held at this node waiting for the depth-scaled flush timer, in arming
    /// order. All entries share the same fixed hold delay, so the front is
    /// always the one whose `TICK_AGG` fires next.
    pending_aggregates: Vec<(u32, PartialAggregate)>,
    /// Counters the harness reads after the run.
    pub metrics: NodeLocalMetrics,
}

impl SimNode {
    /// Creates the state machine for node `id` under the given experiment
    /// configuration.
    ///
    /// Each node owns its `source` outright. Data sources are pure functions
    /// of `(node, now)` (see [`scoop_workload::sources`]), so per-node copies
    /// built from the same config behave exactly like one shared source —
    /// without the `Rc<RefCell<...>>` sharing that would pin a run to a
    /// single thread. This keeps `SimNode` (and the whole engine) `Send`.
    pub fn new(id: NodeId, cfg: Arc<ExperimentConfig>, source: Box<dyn DataSource>) -> Self {
        let routing_cfg = RoutingConfig {
            neighbor_cap: cfg.policy.scoop.neighbor_list_cap,
            descendants_cap: cfg.policy.scoop.descendants_cap,
            summary_neighbors: cfg.policy.scoop.summary_neighbors,
            ..RoutingConfig::default()
        };
        let sink_set = cfg.policy.sink_ids();
        let is_multi = sink_set.len() > 1;
        let is_base = if is_multi {
            sink_set.contains(&id)
        } else {
            id.is_basestation()
        };
        let base = if is_base {
            let total = cfg.num_nodes + 1;
            let rank = sink_set.iter().position(|&s| s == id).unwrap_or(0);
            // Rank 0 (node 0) keeps the classic seed and id sequences, so a
            // single-sink run is byte-identical to the pre-federation code.
            let query_seed = cfg.seed ^ (rank as u64).wrapping_mul(0x51ab_a11e_0000_0001);
            Some(BaseState {
                stats: StatsStore::new(total, cfg.workload.value_domain),
                planner: QueryPlanner::new(),
                query_gen: QueryGenerator::from_spec(&cfg.workload, query_seed),
                next_query_id: 1 + rank as u32,
                next_index_id: if is_multi {
                    StorageIndexId(RANK_STRIDE + rank as u32)
                } else {
                    StorageIndexId(1)
                },
                query_id_stride: if is_multi { sink_set.len() as u32 } else { 1 },
                index_id_stride: if is_multi { RANK_STRIDE } else { 1 },
                last_disseminated: None,
                outstanding: HashMap::new(),
                indices_disseminated: 0,
                remaps_suppressed: 0,
                queries_answered_locally: 0,
                multi: is_multi.then(|| MultiSinkState {
                    rank,
                    epoch: 1,
                    last_heard: vec![None; sink_set.len()],
                }),
            })
        } else {
            None
        };
        let (sinks, rank_assemblers, sink_indices) = if is_multi {
            let n = sink_set.len();
            (
                sink_set,
                (0..n).map(|_| (ChunkAssembler::new(), None)).collect(),
                vec![None; n],
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        // Static indices known a priori under the HASH and BASE policies.
        let current_index = match cfg.policy.kind {
            StoragePolicy::Hash => Some(scoop_core::baselines::hash_index(
                cfg.workload.value_domain,
                cfg.num_nodes,
                SimTime::ZERO,
            )),
            StoragePolicy::Base => Some(StorageIndex::send_to_base(
                StorageIndexId(1),
                cfg.workload.value_domain,
                SimTime::ZERO,
            )),
            StoragePolicy::Scoop | StoragePolicy::Local => None,
        };

        SimNode {
            id,
            routing: RoutingState::new(id, routing_cfg),
            recent: RecentReadings::new(cfg.policy.scoop.recent_readings),
            buffer: DataBuffer::new(DATA_BUFFER_CAP),
            source,
            rng: StdRng::seed_from_u64(cfg.seed ^ (0xa0de_0000 + id.0 as u64)),
            current_index,
            assembler: ChunkAssembler::new(),
            assembling_meta: None,
            batch: Vec::new(),
            batch_dest: None,
            seen_queries: HashSet::new(),
            seen_chunks: HashSet::new(),
            pending_gossip: VecDeque::new(),
            gossip_timer_armed: false,
            base,
            sinks,
            rank_assemblers,
            sink_indices,
            seen_alive: HashSet::new(),
            pending_aggregates: Vec::new(),
            metrics: NodeLocalMetrics::default(),
            cfg,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's routing state (for inspection by tests and the harness).
    pub fn routing(&self) -> &RoutingState {
        &self.routing
    }

    /// The node's data buffer.
    pub fn data_buffer(&self) -> &DataBuffer {
        &self.buffer
    }

    /// The newest complete storage index this node holds.
    pub fn current_index(&self) -> Option<&StorageIndex> {
        self.current_index.as_ref()
    }

    /// The id of the newest complete index, or `NONE`.
    pub fn newest_index_id(&self) -> StorageIndexId {
        self.current_index
            .as_ref()
            .map(|i| i.id())
            .unwrap_or(StorageIndexId::NONE)
    }

    /// Readings currently batched and waiting to be sent to their owner
    /// (sampled but neither stored nor lost yet).
    pub fn pending_batched(&self) -> usize {
        self.batch.len()
    }

    /// Basestation only: how many indices were disseminated.
    pub fn indices_disseminated(&self) -> u64 {
        self.base
            .as_ref()
            .map(|b| b.indices_disseminated)
            .unwrap_or(0)
    }

    /// Basestation only: how many remap rounds were suppressed.
    pub fn remaps_suppressed(&self) -> u64 {
        self.base.as_ref().map(|b| b.remaps_suppressed).unwrap_or(0)
    }

    /// Basestation only: aggregated query outcome counters
    /// `(issued, targets, replies, readings, answered_locally)`.
    pub fn query_outcomes(&self) -> (u64, u64, u64, u64, u64) {
        match &self.base {
            None => (0, 0, 0, 0, 0),
            Some(b) => {
                let issued = b.outstanding.len() as u64 + b.queries_answered_locally;
                let targets = b.outstanding.values().map(|o| o.targets).sum();
                let replies = b.outstanding.values().map(|o| o.replies).sum();
                let readings = b.outstanding.values().map(|o| o.readings).sum();
                (
                    issued,
                    targets,
                    replies,
                    readings,
                    b.queries_answered_locally,
                )
            }
        }
    }

    /// Basestation only: every issued query's final outcome, sorted by query
    /// id. Model tests compare these against a god's-eye evaluator over the
    /// nodes' data buffers; empty on sensors.
    pub fn query_records(&self) -> Vec<QueryRecord> {
        let Some(base) = self.base.as_ref() else {
            return Vec::new();
        };
        let mut records: Vec<QueryRecord> = base
            .outstanding
            .iter()
            .map(|(&query_id, o)| QueryRecord {
                query_id,
                values: o.values,
                time_lo: o.time_lo,
                time_hi: o.time_hi,
                targets: o.targets,
                replies: o.replies,
                readings: o.readings,
                aggregate: o.aggregate.clone(),
            })
            .collect();
        records.sort_by_key(|r| r.query_id);
        records
    }

    fn is_sensor(&self) -> bool {
        // In multi-sink mode promoted sinks stop sampling and take on the
        // basestation duties instead; classically only node 0 is the sink.
        self.base.is_none()
    }

    /// The sink a reply to `query_id` must reach. Query ids are issued with
    /// stride `nsinks` starting at `1 + rank`, so the rank is recoverable
    /// from the id alone and repliers need no extra routing state.
    fn reply_sink(&self, query_id: u32) -> NodeId {
        let rank = (query_id.wrapping_sub(1) as usize) % self.sinks.len().max(1);
        self.sinks[rank]
    }

    fn policy(&self) -> StoragePolicy {
        self.cfg.policy.kind
    }

    fn jitter(&mut self, max_ms: u64) -> SimDuration {
        SimDuration::from_millis(self.rng.gen_range(0..=max_ms.max(1)))
    }

    // ------------------------------------------------------------------
    // Gossip (mapping chunks and queries)
    // ------------------------------------------------------------------

    fn enqueue_gossip(
        &mut self,
        ctx: &mut NodeCtx<'_, SharedPayload>,
        payload: SharedPayload,
        kind: MessageKind,
    ) {
        self.pending_gossip.push_back((payload, kind, 0));
        if !self.gossip_timer_armed {
            self.gossip_timer_armed = true;
            let delay = self.jitter(GOSSIP_DELAY_MS);
            ctx.set_timer(delay, TICK_GOSSIP);
        }
    }

    fn note_gossip_overheard(&mut self, payload: &ScoopPayload) {
        for (pending, _, heard) in self.pending_gossip.iter_mut() {
            let same = match (&**pending, payload) {
                (ScoopPayload::Mapping(a), ScoopPayload::Mapping(b)) => {
                    a.chunk.version == b.chunk.version && a.chunk.index == b.chunk.index
                }
                (ScoopPayload::Query(a), ScoopPayload::Query(b)) => a.query_id == b.query_id,
                (ScoopPayload::SinkAlive(a), ScoopPayload::SinkAlive(b)) => a == b,
                _ => false,
            };
            if same {
                *heard += 1;
            }
        }
    }

    fn flush_one_gossip(&mut self, ctx: &mut NodeCtx<'_, SharedPayload>) {
        while let Some((payload, kind, heard)) = self.pending_gossip.pop_front() {
            if heard >= GOSSIP_SUPPRESSION {
                // Enough neighbors already repeated it: suppress ours.
                continue;
            }
            ctx.send_broadcast(kind, self.routing.parent(), payload);
            break;
        }
        if self.pending_gossip.is_empty() {
            self.gossip_timer_armed = false;
        } else {
            let delay = self.jitter(GOSSIP_DELAY_MS);
            ctx.set_timer(delay, TICK_GOSSIP);
        }
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    /// Resolves the owner (and the index that named it) for a freshly
    /// sampled value. Classically this is a lookup in the one current index;
    /// in multi-sink mode each sink's index covers only its owned slice of
    /// the domain, so the lookup scans the per-rank indices newest-first and
    /// the first hit wins.
    fn lookup_owner(&self, value: scoop_types::Value) -> (NodeId, StorageIndexId) {
        if self.sinks.is_empty() {
            return match &self.current_index {
                Some(idx) => match idx.lookup(value) {
                    Some(owner) => (owner, idx.id()),
                    None => (self.id, idx.id()),
                },
                // No complete index yet: store locally (Section 5.3).
                None => (self.id, StorageIndexId::NONE),
            };
        }
        let mut held: Vec<&StorageIndex> = self.sink_indices.iter().flatten().collect();
        held.sort_by_key(|i| (i.created_at(), i.id()));
        for idx in held.iter().rev() {
            if let Some(owner) = idx.lookup(value) {
                return (owner, idx.id());
            }
        }
        let newest = held.last().map(|i| i.id()).unwrap_or(StorageIndexId::NONE);
        (self.id, newest)
    }

    fn handle_sample(&mut self, ctx: &mut NodeCtx<'_, SharedPayload>) {
        let now = ctx.now();
        let value = self.source.sample(self.id, now);
        let reading = Reading::new(self.id, self.cfg.workload.attribute, value, now);
        self.metrics.sampled += 1;
        self.recent.push(reading);

        if self.policy() == StoragePolicy::Local {
            // LOCAL: everything stays on the producer.
            self.store_reading(reading, StorageIndexId::NONE, StoreReason::LocalDefault);
            return;
        }

        let (owner, sid) = self.lookup_owner(value);

        if owner == self.id {
            self.store_reading(reading, sid, StoreReason::Owner);
            return;
        }

        if self.policy() != StoragePolicy::Scoop {
            // Batching readings into one packet is a Scoop optimization
            // (Section 5.4); the BASE and HASH comparison policies ship each
            // reading individually, as the paper's cost analysis assumes.
            let msg = DataMessage {
                readings: vec![reading],
                owner,
                sid,
            };
            self.dispatch_data(ctx, msg, None);
            return;
        }

        // Batch readings destined for the same owner.
        match self.batch_dest {
            Some((dest, dest_sid)) if dest == owner && dest_sid == sid => {
                self.batch.push(reading);
            }
            Some(_) => {
                self.flush_batch(ctx);
                self.batch_dest = Some((owner, sid));
                self.batch.push(reading);
            }
            None => {
                self.batch_dest = Some((owner, sid));
                self.batch.push(reading);
            }
        }
        if self.batch.len() >= self.cfg.policy.scoop.batch_size {
            self.flush_batch(ctx);
        }
    }

    fn flush_batch(&mut self, ctx: &mut NodeCtx<'_, SharedPayload>) {
        let Some((owner, sid)) = self.batch_dest.take() else {
            return;
        };
        if self.batch.is_empty() {
            return;
        }
        let msg = DataMessage {
            readings: std::mem::take(&mut self.batch),
            owner,
            sid,
        };
        self.dispatch_data(ctx, msg, None);
    }

    /// Routes a data message that was either produced locally (`incoming` is
    /// `None`) or received from the network (`incoming` carries the packet
    /// header, whose hop count bounds how much further it may travel).
    fn dispatch_data(
        &mut self,
        ctx: &mut NodeCtx<'_, SharedPayload>,
        msg: DataMessage,
        incoming: Option<&scoop_net::PacketMeta>,
    ) {
        if let Some(meta) = incoming {
            if meta.hops >= MAX_FORWARD_HOPS {
                // Forwarding budget exhausted (almost certainly a transient
                // routing loop): keep the data here rather than losing it.
                let reason = if self.id.is_basestation() {
                    StoreReason::BaseFallback
                } else {
                    StoreReason::LocalDefault
                };
                let sid = msg.sid;
                for r in msg.readings {
                    self.store_reading(r, sid, reason);
                }
                return;
            }
        }
        let action = {
            let view = LocalNodeView {
                id: self.id,
                index: self.current_index.as_ref(),
                routing: &self.routing,
                neighbor_shortcut: self.cfg.policy.scoop.neighbor_shortcut,
            };
            route_data(&view, msg)
        };
        match action {
            DataRoutingAction::StoreLocal(m) => {
                let reason = if m.owner == self.id {
                    StoreReason::Owner
                } else if self.id.is_basestation() {
                    StoreReason::BaseFallback
                } else {
                    StoreReason::LocalDefault
                };
                let sid = m.sid;
                for r in m.readings {
                    self.store_reading(r, sid, reason);
                }
            }
            DataRoutingAction::StrandedStoreLocal(m) => {
                let sid = m.sid;
                for r in m.readings {
                    self.store_reading(r, sid, StoreReason::LocalDefault);
                }
            }
            DataRoutingAction::Forward { next_hop, message } => {
                // The routing rules may have rewritten owner/sid, so the
                // payload allocation cannot be reused here; this is the one
                // Arc::new on the data forwarding path.
                let payload = Arc::new(ScoopPayload::Data(message));
                match incoming {
                    // Forward the original packet so the origin fields and
                    // hop count survive the multihop path.
                    Some(meta) => ctx.forward(
                        Packet {
                            meta: *meta,
                            payload,
                        },
                        scoop_net::LinkDst::Unicast(next_hop),
                    ),
                    None => ctx.send_unicast(
                        next_hop,
                        MessageKind::Data,
                        self.routing.parent(),
                        payload,
                    ),
                }
            }
        }
    }

    fn store_reading(&mut self, reading: Reading, sid: StorageIndexId, reason: StoreReason) {
        self.buffer.store(reading, reading.timestamp, sid);
        self.metrics.stored += 1;
        match reason {
            StoreReason::Owner => self.metrics.stored_as_owner += 1,
            StoreReason::BaseFallback => self.metrics.stored_base_fallback += 1,
            StoreReason::LocalDefault => self.metrics.stored_local_default += 1,
        }
    }

    // ------------------------------------------------------------------
    // Summaries
    // ------------------------------------------------------------------

    fn send_summary(&mut self, ctx: &mut NodeCtx<'_, SharedPayload>) {
        let Some(parent) = self.routing.parent() else {
            return;
        };
        let values = self.recent.values();
        let summary = SummaryMessage {
            node: self.id,
            histogram: SummaryHistogram::build(&values, self.cfg.policy.scoop.n_bins),
            min: self.recent.min_value(),
            max: self.recent.max_value(),
            sum: self.recent.sum(),
            count: self.recent.len() as u32,
            data_rate_hz: 1.0 / self.cfg.workload.sample_interval.as_secs_f64().max(0.001),
            neighbors: self
                .routing
                .summary_neighbors()
                .into_iter()
                .map(|e| ReportedNeighbor {
                    node: e.node,
                    quality: e.quality,
                })
                .collect(),
            parent: Some(parent),
            newest_complete_index: self.newest_index_id(),
            generated_at: ctx.now(),
        };
        ctx.send_unicast(
            parent,
            MessageKind::Summary,
            Some(parent),
            Arc::new(ScoopPayload::Summary(summary)),
        );
    }

    // ------------------------------------------------------------------
    // Basestation: remap and queries
    // ------------------------------------------------------------------

    fn remap(&mut self, ctx: &mut NodeCtx<'_, SharedPayload>) {
        let now = ctx.now();
        let cfg = Arc::clone(&self.cfg);
        let my_id = self.id;
        let Some(base) = self.base.as_mut() else {
            return;
        };
        // Multi-sink: every remap round opens with an epoch-stamped liveness
        // beacon (even when dissemination ends up suppressed below) and a
        // fresh view of which peers are still alive. A restarted sink's
        // deferred remap timer fires right after the halt ends, so this
        // beacon is also what announces the heal.
        let mut live: Vec<usize> = Vec::new();
        let mut my_rank = 0usize;
        let is_multi = base.multi.is_some();
        if let Some(m) = base.multi.as_mut() {
            let epoch = m.epoch;
            m.epoch += 1;
            my_rank = m.rank;
            live = m.live_ranks(now, cfg.policy.scoop.effective_failover_timeout());
            self.seen_alive.insert((my_id.0, epoch));
            let beacon = Arc::new(ScoopPayload::SinkAlive(SinkAliveMessage {
                sink: my_id,
                epoch,
            }));
            ctx.send_broadcast(MessageKind::Heartbeat, self.routing.parent(), beacon);
        }
        if base.stats.nodes_reporting() == 0 {
            // Nothing to optimize against yet.
            return;
        }
        let params = CostParams::from_stats(&base.stats);
        let builder = IndexBuilder::new(IndexBuilderConfig {
            allow_store_local_fallback: cfg.policy.scoop.allow_store_local_fallback,
        });
        let decision = builder.build(&base.stats, params, base.next_index_id, now);
        let mut index = match decision {
            IndexDecision::UseIndex(index) => index,
            IndexDecision::StoreLocal { .. } => {
                // The store-local policy is cheaper: do not disseminate
                // anything; nodes keep (or fall back to) local storage.
                base.remaps_suppressed += 1;
                return;
            }
        };

        if is_multi {
            // Keep only the value runs this sink owns under the live-rank
            // hash partition; the live peers disseminate the rest. A dead
            // peer's share folds into the survivors automatically because it
            // has dropped out of `live` — that IS the failover.
            let owned = filter_entries_to_rank(&index, my_rank, &live);
            if owned.is_empty() {
                base.remaps_suppressed += 1;
                return;
            }
            index =
                StorageIndex::from_entries(index.id(), index.domain(), owned, index.created_at());
        }

        if cfg.policy.scoop.suppress_unchanged_index {
            if let Some(prev) = &base.last_disseminated {
                if index.difference_fraction(prev) < cfg.policy.scoop.suppression_threshold {
                    base.remaps_suppressed += 1;
                    return;
                }
            }
        }

        base.next_index_id = StorageIndexId(base.next_index_id.0 + base.index_id_stride);
        base.planner.record_index(index.clone());
        base.last_disseminated = Some(index.clone());
        base.indices_disseminated += 1;

        // Chunk and broadcast; neighbors gossip it onward.
        let chunker = Chunker::new(cfg.policy.scoop.mapping_entries_per_packet);
        let chunks = chunker.split(index.id().0 as u64, index.entries());
        let domain = index.domain();
        let created_at = index.created_at();
        if is_multi {
            // Our own chunks must not be re-gossiped when neighbors echo
            // them back, and our own slice joins the per-rank merge like any
            // peer's would.
            for chunk in &chunks {
                self.seen_chunks.insert((chunk.version, chunk.index));
            }
            self.sink_indices[my_rank] = Some(index);
            self.refresh_current_index();
        } else {
            self.current_index = Some(index);
        }
        for chunk in chunks {
            let payload = Arc::new(ScoopPayload::Mapping(MappingChunk {
                chunk,
                domain,
                created_at,
            }));
            ctx.send_broadcast(MessageKind::Mapping, None, payload);
        }
    }

    fn issue_query(&mut self, ctx: &mut NodeCtx<'_, SharedPayload>) {
        let now = ctx.now();
        let policy = self.policy();
        let num_sensors = self.cfg.num_nodes;
        let hash_index = if policy == StoragePolicy::Hash {
            self.current_index.clone()
        } else {
            None
        };
        // Multi-sink: promoted sinks occupy sensor-range ids but hold no
        // sampled data, so query floods must skip them.
        let sink_set = self.sinks.clone();
        let Some(base) = self.base.as_mut() else {
            return;
        };
        let spec = base.query_gen.next_query(now);
        base.stats.record_query(&spec.values, now);

        let targets: NodeBitmap = match policy {
            StoragePolicy::Base => {
                // All data is already at the basestation; answering is free.
                base.queries_answered_locally += 1;
                return;
            }
            StoragePolicy::Local => {
                NodeBitmap::from_nodes((1..=num_sensors).map(|i| NodeId(i as u16)))
            }
            StoragePolicy::Hash => {
                let owners = hash_index
                    .as_ref()
                    .map(|idx| idx.owners_for_range(&spec.values))
                    .unwrap_or_default();
                NodeBitmap::from_nodes(owners.into_iter().filter(|n| !n.is_basestation()))
            }
            StoragePolicy::Scoop => {
                if base.planner.is_empty() {
                    // No index ever disseminated: every node stores locally.
                    NodeBitmap::from_nodes(
                        (1..=num_sensors)
                            .map(|i| NodeId(i as u16))
                            .filter(|n| !sink_set.contains(n)),
                    )
                } else {
                    let plan = base.planner.plan(
                        &spec.values,
                        spec.time_lo,
                        spec.time_hi,
                        base.stats.min_live_index(),
                    );
                    plan.targets
                }
            }
        };

        if targets.is_empty() {
            // Either the values map only to the basestation or nobody can
            // have them; the basestation's own buffer answers for free.
            base.queries_answered_locally += 1;
            return;
        }

        let query_id = base.next_query_id;
        base.next_query_id += base.query_id_stride;
        base.outstanding.insert(
            query_id,
            QueryOutcome {
                targets: targets.len() as u64,
                replies: 0,
                readings: 0,
                values: spec.values,
                time_lo: spec.time_lo,
                time_hi: spec.time_hi,
                aggregate: None,
            },
        );
        let msg = QueryMessage {
            query_id,
            values: spec.values,
            time_lo: spec.time_lo,
            time_hi: spec.time_hi,
            targets,
            aggregate: self.cfg.workload.kind.aggregate_spec(),
        };
        self.seen_queries.insert(query_id);
        ctx.send_broadcast(MessageKind::Query, None, Arc::new(ScoopPayload::Query(msg)));
    }

    // ------------------------------------------------------------------
    // Packet handling
    // ------------------------------------------------------------------

    fn handle_payload(
        &mut self,
        ctx: &mut NodeCtx<'_, SharedPayload>,
        packet: Packet<SharedPayload>,
    ) {
        let meta = packet.meta;
        match &*packet.payload {
            ScoopPayload::Beacon(beacon) => {
                self.routing.on_beacon(meta.link_src, beacon, ctx.now());
            }
            ScoopPayload::Summary(summary) => {
                if let Some(base) = self.base.as_mut() {
                    // The one place a summary needs ownership; everything on
                    // the way here shared the arrival allocation.
                    base.stats.record_summary(summary.clone());
                }
                // Non-sinks forward up the tree; a promoted sink does too
                // (after recording), because summaries climb towards node 0
                // and stopping them here would starve the sinks above us.
                // Node 0 itself is the root and keeps its classic behaviour.
                if self.base.is_none() || !self.id.is_basestation() {
                    // Remember the child branch the origin lives under (only
                    // when it really arrived from below — never learn
                    // "descendants" through our parent).
                    self.note_upward_route(&meta, ctx.now());
                    if meta.hops < MAX_FORWARD_HOPS {
                        if let Some(parent) = self.routing.parent() {
                            ctx.forward(
                                Packet {
                                    meta,
                                    payload: Arc::clone(&packet.payload),
                                },
                                scoop_net::LinkDst::Unicast(parent),
                            );
                        }
                    }
                }
            }
            ScoopPayload::Mapping(chunk) => self.handle_mapping(ctx, chunk, &packet.payload),
            ScoopPayload::Data(data) => {
                self.note_upward_route(&meta, ctx.now());
                // Routing may rewrite owner/sid before storing or forwarding,
                // so the destination clones the message body once here.
                self.dispatch_data(ctx, data.clone(), Some(&meta));
            }
            ScoopPayload::Query(query) => self.handle_query(ctx, query, &packet.payload),
            ScoopPayload::Reply(reply) => {
                let mut consumed = false;
                if let Some(base) = self.base.as_mut() {
                    if let Some(outcome) = base.outstanding.get_mut(&reply.query_id) {
                        outcome.replies += 1;
                        if let Some(partial) = reply.aggregate.as_ref() {
                            outcome.readings += partial.count;
                            match outcome.aggregate.as_mut() {
                                Some(merged) => merged.merge(partial),
                                None => outcome.aggregate = Some(partial.clone()),
                            }
                        } else {
                            outcome.readings += reply.readings.len() as u64;
                        }
                        consumed = true;
                    } else {
                        // Classically an unknown reply at the sink is stale
                        // and dies here; in multi-sink mode it belongs to a
                        // peer and must keep travelling.
                        consumed = self.sinks.is_empty();
                    }
                }
                // In-network tree aggregation: an intermediate still holding
                // its own partial for this query folds the child's partial in
                // (arrival order — deterministic) instead of forwarding; the
                // merged result climbs on this node's own flush.
                if !consumed {
                    if let Some(partial) = reply.aggregate.as_ref() {
                        if let Some((_, held)) = self
                            .pending_aggregates
                            .iter_mut()
                            .find(|(id, _)| *id == reply.query_id)
                        {
                            held.merge(partial);
                            consumed = true;
                        }
                    }
                }
                if !consumed {
                    self.note_upward_route(&meta, ctx.now());
                    if meta.hops < MAX_FORWARD_HOPS {
                        let next = if self.sinks.is_empty() {
                            self.routing.parent()
                        } else {
                            // Route towards the sink that issued the query
                            // (recovered from the id), not blindly up-tree —
                            // a promoted sink is rarely an ancestor of the
                            // replier.
                            let sink = self.reply_sink(reply.query_id);
                            match self
                                .routing
                                .next_hop_for(sink, self.cfg.policy.scoop.neighbor_shortcut)
                            {
                                scoop_routing::NextHop::Neighbor(h)
                                | scoop_routing::NextHop::DownTree(h)
                                | scoop_routing::NextHop::UpTree(h) => Some(h),
                                scoop_routing::NextHop::Local | scoop_routing::NextHop::Stuck => {
                                    None
                                }
                            }
                        };
                        if let Some(hop) = next {
                            ctx.forward(
                                Packet {
                                    meta,
                                    payload: Arc::clone(&packet.payload),
                                },
                                scoop_net::LinkDst::Unicast(hop),
                            );
                        }
                    }
                }
            }
            ScoopPayload::SinkAlive(alive) => {
                if self.sinks.is_empty() {
                    // Never sent in single-sink mode; ignore defensively.
                    return;
                }
                if !self.seen_alive.insert((alive.sink.0, alive.epoch)) {
                    return;
                }
                let now = ctx.now();
                if let Some(rank) = self.sinks.iter().position(|s| *s == alive.sink) {
                    if let Some(m) = self.base.as_mut().and_then(|b| b.multi.as_mut()) {
                        if rank != m.rank {
                            m.last_heard[rank] = Some(now);
                        }
                    }
                }
                // Flood network-wide by polite gossip so every sink hears
                // every peer even across tree branches.
                self.enqueue_gossip(ctx, Arc::clone(&packet.payload), MessageKind::Heartbeat);
            }
        }
    }

    /// Records that `meta.origin` is reachable through `meta.link_src`, but
    /// only when the packet genuinely arrived from below us in the tree:
    /// learning "descendants" from packets sent by our own parent would
    /// poison the descendants list and create routing loops.
    fn note_upward_route(&mut self, meta: &scoop_net::PacketMeta, now: SimTime) {
        if Some(meta.link_src) == self.routing.parent() {
            return;
        }
        if meta.origin == self.id || meta.link_src == self.id {
            return;
        }
        self.routing.note_routed_up(meta.origin, meta.link_src, now);
    }

    fn handle_mapping(
        &mut self,
        ctx: &mut NodeCtx<'_, SharedPayload>,
        mc: &MappingChunk,
        payload: &SharedPayload,
    ) {
        if self.policy() != StoragePolicy::Scoop {
            return;
        }
        if self.sinks.is_empty() {
            if self.base.is_some() {
                return;
            }
            let key = (mc.chunk.version, mc.chunk.index);
            let first_time = self.seen_chunks.insert(key);
            if !first_time {
                return;
            }
            // Gossip the chunk onward (once, with suppression), reusing the
            // arrival's shared allocation.
            self.enqueue_gossip(ctx, Arc::clone(payload), MessageKind::Mapping);

            // Only feed the assembler chunks newer than what we already hold.
            if StorageIndexId(mc.chunk.version as u32) <= self.newest_index_id() {
                return;
            }
            self.assembling_meta = Some((mc.domain, mc.created_at));
            if let Some(entries) = self.assembler.accept(&mc.chunk) {
                let (domain, created_at) = self
                    .assembling_meta
                    .take()
                    .unwrap_or((mc.domain, mc.created_at));
                let index = StorageIndex::from_entries(
                    StorageIndexId(mc.chunk.version as u32),
                    domain,
                    entries,
                    created_at,
                );
                self.current_index = Some(index);
            }
            return;
        }

        // Multi-sink: everyone (sinks included) assembles everyone's chunk
        // stream, per issuing rank. A sink recording a peer's assembled index
        // into its planner is the index-summary exchange that lets any sink
        // plan queries over the whole domain, not just its owned slice.
        let key = (mc.chunk.version, mc.chunk.index);
        if !self.seen_chunks.insert(key) {
            return;
        }
        self.enqueue_gossip(ctx, Arc::clone(payload), MessageKind::Mapping);

        let rank = (mc.chunk.version % RANK_STRIDE as u64) as usize;
        if rank >= self.rank_assemblers.len() {
            return;
        }
        // A mapping chunk proves its issuing sink was alive recently; it
        // counts as liveness evidence alongside the SinkAlive beacons.
        let now = ctx.now();
        if let Some(m) = self.base.as_mut().and_then(|b| b.multi.as_mut()) {
            if rank != m.rank {
                m.last_heard[rank] = Some(now);
            }
        }
        let newest_for_rank = self.sink_indices[rank]
            .as_ref()
            .map(|i| i.id())
            .unwrap_or(StorageIndexId::NONE);
        if StorageIndexId(mc.chunk.version as u32) <= newest_for_rank {
            return;
        }
        let (assembler, meta_slot) = &mut self.rank_assemblers[rank];
        *meta_slot = Some((mc.domain, mc.created_at));
        if let Some(entries) = assembler.accept(&mc.chunk) {
            let (domain, created_at) = meta_slot.take().unwrap_or((mc.domain, mc.created_at));
            let index = StorageIndex::from_entries(
                StorageIndexId(mc.chunk.version as u32),
                domain,
                entries,
                created_at,
            );
            if let Some(base) = self.base.as_mut() {
                base.planner.record_index(index.clone());
            }
            self.sink_indices[rank] = Some(index);
            self.refresh_current_index();
        }
    }

    /// Multi-sink only: mirrors the newest per-rank index (by creation time,
    /// then id) into `current_index`, so the unchanged routing rules keep
    /// re-addressing in-flight data against the freshest mapping.
    fn refresh_current_index(&mut self) {
        self.current_index = self
            .sink_indices
            .iter()
            .flatten()
            .max_by_key(|i| (i.created_at(), i.id()))
            .cloned();
    }

    /// Sends one partial aggregate towards the sink that issued `query_id`,
    /// as a [`MessageKind::Aggregate`] message (counted with query/reply in
    /// the cost breakdown). Mirrors the reply routing exactly: up the tree in
    /// single-sink mode, towards the issuing sink in the federation.
    fn send_aggregate(
        &mut self,
        ctx: &mut NodeCtx<'_, SharedPayload>,
        query_id: u32,
        partial: PartialAggregate,
    ) {
        let reply = ReplyMessage {
            query_id,
            node: self.id,
            readings: Vec::new(),
            aggregate: Some(partial),
        };
        self.metrics.replies_sent += 1;
        let hop = if self.sinks.is_empty() {
            self.routing.parent()
        } else {
            let sink = self.reply_sink(query_id);
            match self
                .routing
                .next_hop_for(sink, self.cfg.policy.scoop.neighbor_shortcut)
            {
                scoop_routing::NextHop::Neighbor(h)
                | scoop_routing::NextHop::DownTree(h)
                | scoop_routing::NextHop::UpTree(h) => Some(h),
                scoop_routing::NextHop::Local | scoop_routing::NextHop::Stuck => None,
            }
        };
        if let Some(hop) = hop {
            ctx.send_unicast(
                hop,
                MessageKind::Aggregate,
                self.routing.parent(),
                Arc::new(ScoopPayload::Reply(reply)),
            );
        }
    }

    fn handle_query(
        &mut self,
        ctx: &mut NodeCtx<'_, SharedPayload>,
        query: &QueryMessage,
        payload: &SharedPayload,
    ) {
        if self.base.is_some() {
            if self.sinks.is_empty() {
                return;
            }
            // A multi-sink sink relays peers' queries onward (they flood by
            // gossip, and a sink sits on good tree positions) but never
            // answers them: sinks hold only fallback data, which the issuing
            // sink already accounts for via its own planner.
            if !self.seen_queries.insert(query.query_id) {
                return;
            }
            let useful = query
                .targets
                .iter()
                .any(|t| self.routing.is_neighbor(t) || self.routing.is_descendant(t));
            if useful {
                self.enqueue_gossip(ctx, Arc::clone(payload), MessageKind::Query);
            }
            return;
        }
        if !self.seen_queries.insert(query.query_id) {
            return;
        }

        // Modified Trickle: only re-broadcast if doing so can still help —
        // our own bit is set, or a neighbor / descendant is targeted.
        let useful = query.targets.contains(self.id)
            || query
                .targets
                .iter()
                .any(|t| self.routing.is_neighbor(t) || self.routing.is_descendant(t));
        if useful {
            self.enqueue_gossip(ctx, Arc::clone(payload), MessageKind::Query);
        }

        if query.targets.contains(self.id) {
            let readings = self
                .buffer
                .scan(&query.values, query.time_lo, query.time_hi);

            if let Some(agg_spec) = query.aggregate {
                // Aggregate path: fold the matching readings into a partial
                // instead of shipping them.
                let mut partial =
                    PartialAggregate::for_spec(&agg_spec, self.cfg.workload.value_domain);
                for r in &readings {
                    partial.observe(r.value);
                }
                if self.policy() == StoragePolicy::Local && self.sinks.is_empty() {
                    // Tree aggregation (TAG-style): hold the partial for a
                    // fixed depth-scaled delay so descendants' partials can
                    // merge in, then flush one message to the parent. No
                    // jitter — the RNG stream must match the seed workloads.
                    let depth = self.routing.hops().min(MAX_FORWARD_HOPS as u16) as u64;
                    let hold = SimDuration::from_millis(
                        AGG_HOLD_STEP_MS * (MAX_FORWARD_HOPS as u64 - depth),
                    );
                    self.pending_aggregates.push((query.query_id, partial));
                    ctx.set_timer(hold, TICK_AGG);
                } else {
                    // Value routing (SCOOP / HASH): the owner's partial is
                    // already the whole answer for its bucket — send it
                    // towards the sink immediately, unmerged.
                    self.send_aggregate(ctx, query.query_id, partial);
                }
                return;
            }

            let reply = ReplyMessage {
                query_id: query.query_id,
                node: self.id,
                readings,
                aggregate: None,
            };
            self.metrics.replies_sent += 1;
            if self.sinks.is_empty() {
                if let Some(parent) = self.routing.parent() {
                    ctx.send_unicast(
                        parent,
                        MessageKind::Reply,
                        Some(parent),
                        Arc::new(ScoopPayload::Reply(reply)),
                    );
                }
            } else {
                // Aim the reply at the issuing sink from the first hop.
                let sink = self.reply_sink(query.query_id);
                let hop = match self
                    .routing
                    .next_hop_for(sink, self.cfg.policy.scoop.neighbor_shortcut)
                {
                    scoop_routing::NextHop::Neighbor(h)
                    | scoop_routing::NextHop::DownTree(h)
                    | scoop_routing::NextHop::UpTree(h) => Some(h),
                    scoop_routing::NextHop::Local | scoop_routing::NextHop::Stuck => None,
                };
                if let Some(hop) = hop {
                    ctx.send_unicast(
                        hop,
                        MessageKind::Reply,
                        self.routing.parent(),
                        Arc::new(ScoopPayload::Reply(reply)),
                    );
                }
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum StoreReason {
    Owner,
    BaseFallback,
    LocalDefault,
}

impl NodeLogic for SimNode {
    type Payload = SharedPayload;

    fn on_init(&mut self, ctx: &mut NodeCtx<'_, SharedPayload>) {
        // Beacons and maintenance run on every node from the very start, so
        // the tree forms during the warmup window.
        let beacon_offset = self.jitter(BEACON_INTERVAL.as_millis());
        ctx.set_timer(beacon_offset, TICK_BEACON);
        ctx.set_timer(MAINTENANCE_INTERVAL, TICK_MAINTENANCE);

        let warmup = self.cfg.warmup;
        if self.is_sensor() {
            let sample_offset = self.jitter(self.cfg.workload.sample_interval.as_millis());
            ctx.set_timer(warmup + sample_offset, TICK_SAMPLE);
            if self.policy() == StoragePolicy::Scoop {
                let summary_offset =
                    self.jitter(self.cfg.policy.scoop.summary_interval.as_millis());
                ctx.set_timer(warmup + summary_offset, TICK_SUMMARY);
            }
        } else {
            if self.policy() == StoragePolicy::Scoop {
                ctx.set_timer(warmup + self.cfg.policy.scoop.remap_interval, TICK_REMAP);
            }
            if self.policy() != StoragePolicy::Base {
                // Stagger the first query half an interval after sampling
                // starts so there is something to query.
                let offset = self.cfg.workload.queries.query_interval.div(2);
                ctx.set_timer(
                    warmup + self.cfg.workload.queries.query_interval + offset,
                    TICK_QUERY,
                );
            }
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, SharedPayload>,
        packet: Packet<SharedPayload>,
        addressed: bool,
    ) {
        self.routing.observe_packet(&packet.meta, ctx.now());
        if let Some(base) = self.base.as_mut() {
            if let Some(parent) = packet.meta.origin_parent {
                base.stats.note_parent(packet.meta.origin, parent);
            }
        }
        if !addressed {
            // Snooped traffic still feeds gossip suppression and, for
            // beacons, parent selection (beacons are broadcast anyway).
            self.note_gossip_overheard(&packet.payload);
            // Multi-sink: a promoted sink rarely sits on the unicast path a
            // summary climbs towards node 0, so it harvests overheard
            // summaries too — the statistics don't care how a report
            // arrived. Never taken in single-sink mode.
            if !self.sinks.is_empty() {
                if let ScoopPayload::Summary(summary) = &*packet.payload {
                    if let Some(base) = self.base.as_mut() {
                        base.stats.record_summary(summary.clone());
                    }
                }
            }
            return;
        }
        self.handle_payload(ctx, packet);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, SharedPayload>, token: TimerToken) {
        match token {
            TICK_BEACON => {
                let beacon = self.routing.my_beacon();
                ctx.send_broadcast(
                    MessageKind::Heartbeat,
                    self.routing.parent(),
                    Arc::new(ScoopPayload::Beacon(beacon)),
                );
                let next = BEACON_INTERVAL + self.jitter(5_000);
                ctx.set_timer(next, TICK_BEACON);
            }
            TICK_MAINTENANCE => {
                self.routing.maintenance(ctx.now());
                ctx.set_timer(MAINTENANCE_INTERVAL, TICK_MAINTENANCE);
            }
            TICK_SAMPLE => {
                self.handle_sample(ctx);
                ctx.set_timer(self.cfg.workload.sample_interval, TICK_SAMPLE);
            }
            TICK_SUMMARY => {
                self.send_summary(ctx);
                ctx.set_timer(self.cfg.policy.scoop.summary_interval, TICK_SUMMARY);
            }
            TICK_REMAP => {
                self.remap(ctx);
                ctx.set_timer(self.cfg.policy.scoop.remap_interval, TICK_REMAP);
            }
            TICK_QUERY => {
                self.issue_query(ctx);
                ctx.set_timer(self.cfg.workload.queries.query_interval, TICK_QUERY);
            }
            TICK_GOSSIP => {
                self.flush_one_gossip(ctx);
            }
            // One flush per arming; entries share a fixed hold delay, so the
            // front is the one this firing belongs to.
            TICK_AGG if !self.pending_aggregates.is_empty() => {
                let (query_id, partial) = self.pending_aggregates.remove(0);
                self.send_aggregate(ctx, query_id, partial);
            }
            TICK_SERVE => {
                // Injected by the serving tier; the node only acknowledges it
                // in its counters. The timer is one-shot and never re-armed
                // here, so plain simulation runs are untouched.
                self.metrics.serve_ticks += 1;
            }
            _ => {}
        }
    }

    fn on_send_result(
        &mut self,
        _ctx: &mut NodeCtx<'_, SharedPayload>,
        delivered: bool,
        packet: Packet<SharedPayload>,
    ) {
        if !delivered && matches!(&*packet.payload, ScoopPayload::Data(_)) {
            // The readings in a dropped data packet are lost; they stay
            // counted as sampled but never as stored, which is exactly the
            // storage-success gap the paper reports.
            let _ = packet;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_net::{Engine, EngineConfig, LinkModel, Topology};
    use scoop_types::{DataSourceKind, Value};
    use scoop_workload::make_source;

    /// Builds an engine over a small fully-connected grid with perfect links
    /// so protocol behaviour can be checked without loss-induced noise.
    fn perfect_engine(cfg: &ExperimentConfig, side: usize) -> Engine<SimNode> {
        let topo = Topology::grid(side, 10.0).expect("grid");
        let links = LinkModel::perfect(&topo);
        let shared = Arc::new(cfg.clone());
        let proto = make_source(
            cfg.workload.data_source,
            cfg.workload.value_domain,
            topo.len() - 1,
            cfg.seed,
        );
        let nodes: Vec<SimNode> = topo
            .nodes()
            .map(|id| SimNode::new(id, Arc::clone(&shared), proto.clone_box()))
            .collect();
        Engine::new(
            topo,
            links,
            nodes,
            EngineConfig {
                seed: cfg.seed,
                ..Default::default()
            },
        )
        .expect("engine")
    }

    fn tiny_cfg(policy: StoragePolicy, source: DataSourceKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_test();
        cfg.num_nodes = 8; // 3×3 grid
        cfg.duration = SimDuration::from_mins(9);
        cfg.warmup = SimDuration::from_mins(2);
        cfg.policy.scoop.summary_interval = SimDuration::from_secs(40);
        cfg.policy.scoop.remap_interval = SimDuration::from_secs(80);
        cfg.policy.kind = policy;
        cfg.workload.data_source = source;
        cfg.seed = 3;
        cfg
    }

    #[test]
    fn summaries_reach_the_basestation_statistics() {
        let cfg = tiny_cfg(StoragePolicy::Scoop, DataSourceKind::Unique);
        let mut engine = perfect_engine(&cfg, 3);
        engine.run_until(SimTime::ZERO + cfg.warmup + SimDuration::from_secs(200));
        let base = engine.node(NodeId::BASESTATION);
        let stats = &base.base.as_ref().expect("basestation state").stats;
        assert!(
            stats.nodes_reporting() >= 6,
            "most sensors should have reported a summary, got {}",
            stats.nodes_reporting()
        );
    }

    #[test]
    fn mapping_dissemination_installs_indices_on_sensors() {
        let cfg = tiny_cfg(StoragePolicy::Scoop, DataSourceKind::Unique);
        let mut engine = perfect_engine(&cfg, 3);
        engine.run_until(SimTime::ZERO + cfg.duration);
        let base_epoch = engine.node(NodeId::BASESTATION).newest_index_id();
        assert!(base_epoch.is_some(), "the basestation built no index");
        let sensors_with_index = engine
            .iter_nodes()
            .filter(|(id, n)| !id.is_basestation() && n.newest_index_id().is_some())
            .count();
        assert_eq!(
            sensors_with_index, 8,
            "on perfect links every sensor assembles the index"
        );
    }

    #[test]
    fn unique_values_end_up_owned_by_their_producers() {
        let cfg = tiny_cfg(StoragePolicy::Scoop, DataSourceKind::Unique);
        let mut engine = perfect_engine(&cfg, 3);
        engine.run_until(SimTime::ZERO + cfg.duration);
        let base = engine.node(NodeId::BASESTATION);
        let index = base.current_index().expect("index exists");
        // Under UNIQUE every node always produces exactly its own id, so once
        // the statistics have converged the index maps node i's value to a
        // nearby node — in the common case node i itself.
        let mut self_owned = 0;
        for sensor in 1..=8u16 {
            if index.lookup(sensor as Value) == Some(NodeId(sensor)) {
                self_owned += 1;
            }
        }
        assert!(
            self_owned >= 5,
            "most UNIQUE values should be owned by their producer, got {self_owned}/8"
        );
    }

    #[test]
    fn base_policy_stores_everything_at_the_root() {
        let cfg = tiny_cfg(StoragePolicy::Base, DataSourceKind::Gaussian);
        let mut engine = perfect_engine(&cfg, 3);
        engine.run_until(SimTime::ZERO + cfg.duration);
        let root_stored = engine.node(NodeId::BASESTATION).metrics.stored;
        let elsewhere: u64 = engine
            .iter_nodes()
            .filter(|(id, _)| !id.is_basestation())
            .map(|(_, n)| n.metrics.stored)
            .sum();
        assert!(root_stored > 0);
        assert_eq!(elsewhere, 0, "BASE must not store anything on sensors");
    }

    #[test]
    fn local_policy_answers_queries_from_producers() {
        let cfg = tiny_cfg(StoragePolicy::Local, DataSourceKind::Unique);
        let mut engine = perfect_engine(&cfg, 3);
        engine.run_until(SimTime::ZERO + cfg.duration);
        let (issued, targets, replies, _readings, _local) =
            engine.node(NodeId::BASESTATION).query_outcomes();
        assert!(issued > 5);
        assert_eq!(
            targets,
            issued * 8,
            "LOCAL floods every query to every sensor"
        );
        assert!(
            replies as f64 >= targets as f64 * 0.9,
            "perfect links should deliver nearly all replies ({replies}/{targets})"
        );
        // Sensors keep their own data.
        for (id, node) in engine.iter_nodes() {
            if !id.is_basestation() {
                assert_eq!(node.metrics.stored, node.metrics.sampled);
            }
        }
    }

    #[test]
    fn ownership_partition_is_disjoint_complete_and_collapses_on_failover() {
        let live = vec![0usize, 1];
        let domain = ValueRange::new(0, 99);
        let owners = vec![NodeId(3); 100];
        let full =
            StorageIndex::from_owners(StorageIndexId(64), domain, &owners, SimTime::ZERO).unwrap();
        let a = filter_entries_to_rank(&full, 0, &live);
        let b = filter_entries_to_rank(&full, 1, &live);
        let ia = StorageIndex::from_entries(StorageIndexId(64), domain, a, SimTime::ZERO);
        let ib = StorageIndex::from_entries(StorageIndexId(65), domain, b, SimTime::ZERO);
        let mut covered = 0;
        for v in domain.values() {
            let in_a = ia.lookup(v).is_some();
            let in_b = ib.lookup(v).is_some();
            assert!(in_a != in_b, "value {v} must be owned by exactly one rank");
            covered += 1;
        }
        assert_eq!(covered, 100);
        assert!(!ia.is_complete() && !ib.is_complete());
        // With rank 1 dead, rank 0 owns the entire domain: that is failover.
        let solo = filter_entries_to_rank(&full, 0, &[0]);
        let is0 = StorageIndex::from_entries(StorageIndexId(128), domain, solo, SimTime::ZERO);
        assert!(is0.is_complete());
    }

    #[test]
    fn stale_sinks_drop_out_of_the_live_set_and_reappear_on_contact() {
        let mut m = MultiSinkState {
            rank: 0,
            epoch: 1,
            last_heard: vec![None, None],
        };
        let timeout = SimDuration::from_secs(120);
        // Grace period: a never-heard peer counts as alive early on.
        assert_eq!(m.live_ranks(SimTime::from_secs(60), timeout), vec![0, 1]);
        // Long silence past the timeout kills it.
        assert_eq!(m.live_ranks(SimTime::from_secs(500), timeout), vec![0]);
        // One beacon resurrects it.
        m.last_heard[1] = Some(SimTime::from_secs(450));
        assert_eq!(m.live_ranks(SimTime::from_secs(500), timeout), vec![0, 1]);
    }

    #[test]
    fn multi_sink_federation_splits_indices_and_serves_queries_from_both_sinks() {
        let mut cfg = tiny_cfg(StoragePolicy::Scoop, DataSourceKind::Gaussian);
        cfg.policy.basestations = vec![NodeId(0), NodeId(5)];
        let mut engine = perfect_engine(&cfg, 3);
        engine.run_until(SimTime::ZERO + cfg.duration);

        // The promoted sink stopped sampling and became a real sink.
        let promoted = engine.node(NodeId(5));
        assert_eq!(promoted.metrics.sampled, 0);
        assert!(
            promoted.indices_disseminated() > 0,
            "the promoted sink must disseminate its owned slice"
        );
        let root = engine.node(NodeId::BASESTATION);
        assert!(root.indices_disseminated() > 0);

        // Per-rank ids: rank 0 issues multiples of 64, rank 1 is offset 1.
        let rank0 = root.sink_indices[0].as_ref().expect("rank-0 index");
        let rank1 = root.sink_indices[1].as_ref().expect("rank-1 index");
        assert_eq!(rank0.id().0 % RANK_STRIDE, 0);
        assert_eq!(rank1.id().0 % RANK_STRIDE, 1);
        // The two slices never claim the same value.
        for v in cfg.workload.value_domain.values() {
            assert!(
                !(rank0.lookup(v).is_some() && rank1.lookup(v).is_some()),
                "value {v} claimed by both sinks"
            );
        }

        // Sensors merged both chunk streams.
        let merged = engine
            .iter_nodes()
            .filter(|(id, n)| {
                n.base.is_none()
                    && !id.is_basestation()
                    && n.sink_indices.iter().flatten().count() == 2
            })
            .count();
        assert!(
            merged >= 6,
            "most sensors should hold both sinks' slices, got {merged}"
        );

        // Both sinks issue queries (odd/even id split) and replies find
        // their way back to the issuing sink.
        let (issued0, _, replies0, _, local0) = root.query_outcomes();
        let (issued1, _, replies1, _, local1) = promoted.query_outcomes();
        assert!(issued0 > 2 && issued1 > 2);
        assert!(
            replies0 + local0 > 0,
            "node 0 got {replies0} replies, {local0} local answers"
        );
        assert!(
            replies1 + local1 > 0,
            "the promoted sink got {replies1} replies, {local1} local answers"
        );
    }

    #[test]
    fn hash_policy_uses_static_index_without_mappings() {
        let cfg = tiny_cfg(StoragePolicy::Hash, DataSourceKind::Gaussian);
        let mut engine = perfect_engine(&cfg, 3);
        engine.run_until(SimTime::ZERO + cfg.duration);
        assert_eq!(engine.stats().total_tx().mapping, 0);
        assert_eq!(engine.stats().total_tx().summary, 0);
        assert!(engine.stats().total_tx().data > 0);
        // Every node was constructed with the same static index.
        let ids: std::collections::HashSet<_> = engine
            .iter_nodes()
            .map(|(_, n)| n.newest_index_id())
            .collect();
        assert_eq!(ids.len(), 1);
    }
}
