//! Whole-network simulation harness.
//!
//! This crate wires the substrates (network simulator, routing tree, Trickle
//! dissemination, node storage, workload generators) and the Scoop core
//! (statistics, index construction, routing rules, query planning) into a
//! runnable system, and reproduces every experiment in the paper's
//! evaluation:
//!
//! * [`node`] — the per-node protocol state machine. One type implements all
//!   four storage policies (SCOOP, LOCAL, BASE, HASH) plus the basestation
//!   role, driven entirely by simulator events.
//! * [`metrics`] — per-run metrics: the Figure 3 message breakdown, storage
//!   and query success rates, destination accuracy, and per-node skew.
//! * [`builder`] — [`SimBuilder`]: assembles an engine from a
//!   [`ScenarioSpec`](scoop_types::ScenarioSpec) through the pluggable
//!   `TopologyGen` / `LinkGen` factories and resolves the fault axis into a
//!   radio-outage schedule.
//! * [`runner`] — runs a built engine and extracts a
//!   [`metrics::RunResult`]; multi-trial averaging included.
//! * [`sweep`] — the parallel, deterministic scenario runner: declarative
//!   [`sweep::ScenarioSuite`]s executed across threads by
//!   [`sweep::SweepRunner`] with results collected in input order.
//! * [`experiments`] — one module per paper figure/table, each a declarative
//!   scenario grid handed to the sweep runner.
//! * [`report`] — plain-text and JSON rendering of experiment rows.

#![warn(missing_docs)]

pub mod builder;
pub mod experiments;
pub mod metrics;
pub mod node;
pub mod report;
pub mod runner;
pub mod sweep;

pub use builder::{resolve_fault_schedule, SimBuilder};
pub use metrics::{MessageBreakdown, QueryMetrics, RootSkew, RunResult, StorageMetrics};
pub use node::SharedPayload;
pub use node::SimNode;
pub use node::TICK_SERVE;
pub use runner::{
    average_results, build_engine, build_engine_with, events_dispatched_total,
    run_built_experiment, run_experiment, run_trials,
};
pub use sweep::{Scenario, ScenarioSuite, SweepReport, SweepRunner};
