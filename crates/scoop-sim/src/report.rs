//! Plain-text and JSON rendering of experiment rows.
//!
//! The benchmark harness prints these tables so that `cargo bench` output can
//! be compared line by line with the paper's figures; the same rows are
//! emitted as JSON for EXPERIMENTS.md bookkeeping.

use crate::experiments::{
    AblationRow, AggregateOpsRow, ChaosRow, Fig3Row, Fig4Row, Fig5Row, LinkCalibrationRow,
    RangeWidthRow, ReliabilityRow, RootSkewRow, SampleIntervalRow, ScalingRow,
};
use scoop_types::ScoopError;
use serde::Serialize;

/// Renders any serializable row set as pretty JSON (one array).
pub fn to_json<T: Serialize>(rows: &[T]) -> Result<String, ScoopError> {
    serde_json::to_string_pretty(rows).map_err(|e| ScoopError::Serialization(e.to_string()))
}

/// Formats the Figure 3 rows as the stacked-bar table from the paper.
pub fn fig3_table(title: &str, rows: &[Fig3Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<22} {:>10} {:>10} {:>10} {:>12} {:>10}\n",
        "policy/source", "data", "summary", "mapping", "query/reply", "total"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>10} {:>10} {:>10} {:>12} {:>10}\n",
            format!("{}/{}", r.policy, r.source),
            r.messages.data,
            r.messages.summary,
            r.messages.mapping,
            r.messages.query_reply,
            r.total
        ));
    }
    out
}

/// Formats the Figure 4 rows (cost vs % nodes queried).
pub fn fig4_table(rows: &[Fig4Row]) -> String {
    let mut out = String::from("Figure 4: cost vs. % of nodes queried\n");
    out.push_str(&format!(
        "{:<8} {:>14} {:>18} {:>14}\n",
        "policy", "req. width", "% nodes queried", "messages"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>13.0}% {:>17.1}% {:>14}\n",
            r.policy.to_string(),
            r.requested_width_frac * 100.0,
            r.fraction_nodes_queried * 100.0,
            r.total_messages
        ));
    }
    out
}

/// Formats the Figure 5 rows (cost vs query interval).
pub fn fig5_table(rows: &[Fig5Row]) -> String {
    let mut out = String::from("Figure 5: cost vs. query interval\n");
    out.push_str(&format!(
        "{:<8} {:>16} {:>14}\n",
        "policy", "interval (s)", "messages"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>16} {:>14}\n",
            r.policy.to_string(),
            r.query_interval_secs,
            r.total_messages
        ));
    }
    out
}

/// Formats the sample-interval sweep rows.
pub fn sample_interval_table(rows: &[SampleIntervalRow]) -> String {
    let mut out = String::from("Sample-interval sweep (SCOOP)\n");
    out.push_str(&format!(
        "{:<10} {:>14} {:>12} {:>14}\n",
        "source", "interval (s)", "messages", "non-data msgs"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>14} {:>12} {:>14}\n",
            r.source.to_string(),
            r.sample_interval_secs,
            r.total_messages,
            r.non_data_messages
        ));
    }
    out
}

/// Formats the reliability rows.
pub fn reliability_table(rows: &[ReliabilityRow]) -> String {
    let mut out =
        String::from("Reliability (paper: ~93 % stored, ~78 % of query results, ~85 % at owner)\n");
    out.push_str(&format!(
        "{:<8} {:>16} {:>14} {:>22}\n",
        "policy", "storage success", "query success", "destination accuracy"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>15.1}% {:>13.1}% {:>21.1}%\n",
            r.policy.to_string(),
            r.storage_success * 100.0,
            r.query_success * 100.0,
            r.destination_accuracy * 100.0
        ));
    }
    out
}

/// Formats the chaos rows: per-phase reliability of a faulted run next to
/// its unfaulted control.
pub fn chaos_table(title: &str, rows: &[ChaosRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<18} {:>16} {:>14} {:>18} {:>16}\n",
        "scenario/phase", "storage success", "query success", "control storage", "control query"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>15.1}% {:>13.1}% {:>17.1}% {:>15.1}%\n",
            format!("{}/{}", r.scenario, r.phase),
            r.storage_success * 100.0,
            r.query_success * 100.0,
            r.control_storage_success * 100.0,
            r.control_query_success * 100.0
        ));
    }
    out
}

/// Formats the link-calibration rows.
pub fn link_calibration_table(rows: &[LinkCalibrationRow]) -> String {
    let mut out = String::from(
        "Link calibration (SCOOP; paper reliability: ~93 % stored, ~78 % of query results)\n",
    );
    out.push_str(&format!(
        "{:<12} {:>10} {:>16} {:>14} {:>12}\n",
        "loss floor", "exponent", "storage success", "query success", "messages"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12.2} {:>10.1} {:>15.1}% {:>13.1}% {:>12}\n",
            r.loss_floor,
            r.distance_exponent,
            r.storage_success * 100.0,
            r.query_success * 100.0,
            r.total_messages
        ));
    }
    out
}

/// Formats the root-skew rows.
pub fn root_skew_table(rows: &[RootSkewRow]) -> String {
    let mut out = String::from("Root-node skew\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>16} {:>12}\n",
        "policy", "root tx", "root rx", "mean sensor tx", "total msgs"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>16.1} {:>12}\n",
            r.policy.to_string(),
            r.root_tx,
            r.root_rx,
            r.mean_sensor_tx,
            r.total_messages
        ));
    }
    out
}

/// Formats the scaling rows, titled `title` (the scaling grid runs under
/// more than one policy, so the heading cannot be hardcoded).
pub fn scaling_table(title: &str, rows: &[ScalingRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<10} {:>8} {:>12} {:>16} {:>16}\n",
        "source", "nodes", "messages", "msgs per node", "storage success"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>8} {:>12} {:>16.1} {:>15.1}%\n",
            r.source.to_string(),
            r.num_nodes,
            r.total_messages,
            r.messages_per_node,
            r.storage_success * 100.0
        ));
    }
    out
}

/// Formats the range-width sweep rows.
pub fn range_width_table(rows: &[RangeWidthRow]) -> String {
    let mut out = String::from("Range workloads: cost vs. fixed query width\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>18} {:>12} {:>14}\n",
        "policy", "width", "% nodes queried", "messages", "query success"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>9.0}% {:>17.1}% {:>12} {:>13.1}%\n",
            r.policy.to_string(),
            r.width_frac * 100.0,
            r.fraction_nodes_queried * 100.0,
            r.total_messages,
            r.query_success * 100.0
        ));
    }
    out
}

/// Formats the aggregate-operator grid rows.
pub fn aggregate_ops_table(rows: &[AggregateOpsRow]) -> String {
    let mut out = String::from("Aggregate workloads: cost per operator\n");
    out.push_str(&format!(
        "{:<8} {:<6} {:>12} {:>14} {:>14}\n",
        "policy", "op", "messages", "query/reply", "query success"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<6} {:>12} {:>14} {:>13.1}%\n",
            r.policy.to_string(),
            r.op,
            r.total_messages,
            r.query_reply_messages,
            r.query_success * 100.0
        ));
    }
    out
}

/// Formats the ablation rows.
pub fn ablation_table(rows: &[AblationRow]) -> String {
    let mut out = String::from("Ablations (SCOOP)\n");
    out.push_str(&format!(
        "{:<24} {:<10} {:>12} {:>10} {:>10}\n",
        "variant", "source", "messages", "data", "mapping"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:<10} {:>12} {:>10} {:>10}\n",
            r.variant,
            r.source.to_string(),
            r.total_messages,
            r.data_messages,
            r.mapping_messages
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MessageBreakdown;
    use scoop_types::{DataSourceKind, StoragePolicy};

    #[test]
    fn fig3_table_contains_every_row_and_column() {
        let rows = vec![Fig3Row {
            policy: StoragePolicy::Scoop,
            source: DataSourceKind::Real,
            messages: MessageBreakdown {
                data: 1,
                summary: 2,
                mapping: 3,
                query_reply: 4,
            },
            total: 10,
        }];
        let t = fig3_table("Figure 3 (middle)", &rows);
        assert!(t.contains("scoop/real"));
        assert!(t.contains("query/reply"));
        assert!(t.contains("10"));
    }

    #[test]
    fn json_rendering_is_valid() {
        let rows = vec![Fig5Row {
            policy: StoragePolicy::Local,
            query_interval_secs: 15,
            total_messages: 1234,
        }];
        let json = to_json(&rows).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["total_messages"], 1234);
    }

    #[test]
    fn other_tables_render() {
        assert!(fig4_table(&[]).contains("Figure 4"));
        assert!(reliability_table(&[]).contains("Reliability"));
        assert!(root_skew_table(&[]).contains("Root-node skew"));
        assert!(scaling_table("Scaling study", &[]).contains("Scaling"));
        assert!(ablation_table(&[]).contains("Ablations"));
        assert!(sample_interval_table(&[]).contains("Sample-interval"));
        assert!(range_width_table(&[]).contains("Range workloads"));
        assert!(aggregate_ops_table(&[]).contains("Aggregate workloads"));
    }
}
