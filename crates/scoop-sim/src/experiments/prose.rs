//! The prose experiments from Section 6: the sample-interval sweep, the loss
//! / reliability measurements, the root-node skew analysis, and the scaling
//! study. Each is a declarative scenario grid run by the parallel
//! [`SweepRunner`](crate::sweep::SweepRunner).

use crate::metrics::RunResult;
use crate::sweep::{ScenarioSuite, SweepRunner};
use scoop_types::{DataSourceKind, ExperimentConfig, ScoopError, SimDuration, StoragePolicy};
use serde::{Deserialize, Serialize};

/// One point of the sample-interval sweep ("as less data is stored,
/// differences between the behavior of Scoop on different types of data are
/// less pronounced").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SampleIntervalRow {
    /// The data source.
    pub source: DataSourceKind,
    /// Seconds between sensor samples.
    pub sample_interval_secs: u64,
    /// Total messages over the measured window.
    pub total_messages: u64,
    /// Messages that are not data messages (queries, mappings, summaries) —
    /// the overhead that dominates when little data is produced.
    pub non_data_messages: u64,
}

/// Sweeps the sample interval for SCOOP over the given data sources.
pub fn sample_interval_sweep(
    base: &ExperimentConfig,
    sources: &[DataSourceKind],
    intervals_secs: &[u64],
    trials: usize,
) -> Result<Vec<SampleIntervalRow>, ScoopError> {
    let grid: Vec<(DataSourceKind, u64)> = sources
        .iter()
        .flat_map(|&src| intervals_secs.iter().map(move |&s| (src, s)))
        .collect();
    let suite = ScenarioSuite::from_grid(
        "sample-interval",
        trials,
        grid.iter().copied(),
        |(source, secs)| {
            let mut cfg = base.clone();
            cfg.policy.kind = StoragePolicy::Scoop;
            cfg.workload.data_source = source;
            cfg.workload.sample_interval = SimDuration::from_secs(secs.max(1));
            (format!("{source}/sample-{secs}s"), cfg)
        },
    );
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(grid
        .iter()
        .zip(report.averaged())
        .map(|(&(source, secs), avg)| SampleIntervalRow {
            source,
            sample_interval_secs: secs,
            total_messages: avg.total_messages(),
            non_data_messages: avg.total_messages() - avg.messages.data,
        })
        .collect())
}

/// Reliability numbers for one policy (the paper reports SCOOP: ~93 % of data
/// messages stored, ~78 % of query results retrieved, ~85 % of readings
/// reaching their designated owner).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReliabilityRow {
    /// The storage policy.
    pub policy: StoragePolicy,
    /// Fraction of sampled readings stored somewhere.
    pub storage_success: f64,
    /// Fraction of expected query replies that reached the basestation.
    pub query_success: f64,
    /// Of the routed readings, the fraction stored on the designated owner
    /// (the rest fell back to the root).
    pub destination_accuracy: f64,
}

/// Runs the reliability experiment for the given policies.
pub fn reliability(
    base: &ExperimentConfig,
    policies: &[StoragePolicy],
    trials: usize,
) -> Result<Vec<ReliabilityRow>, ScoopError> {
    let suite =
        ScenarioSuite::from_grid("reliability", trials, policies.iter().copied(), |policy| {
            let mut cfg = base.clone();
            cfg.policy.kind = policy;
            (policy.to_string(), cfg)
        });
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(policies
        .iter()
        .zip(report.averaged())
        .map(|(&policy, avg)| ReliabilityRow {
            policy,
            storage_success: avg.storage.storage_success(),
            query_success: avg.queries.query_success(),
            destination_accuracy: avg.storage.destination_accuracy(),
        })
        .collect())
}

/// The root-skew comparison: what the root transmits and receives versus an
/// average sensor node, per policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RootSkewRow {
    /// The storage policy.
    pub policy: StoragePolicy,
    /// Messages transmitted by the root over the measured window.
    pub root_tx: u64,
    /// Messages received by the root over the measured window.
    pub root_rx: u64,
    /// Mean messages transmitted per sensor node.
    pub mean_sensor_tx: f64,
    /// Total messages across the network (for the "uses less energy overall"
    /// comparison).
    pub total_messages: u64,
}

/// Runs the root-skew experiment for SCOOP, BASE, and LOCAL.
pub fn root_skew(base: &ExperimentConfig, trials: usize) -> Result<Vec<RootSkewRow>, ScoopError> {
    let policies = [
        StoragePolicy::Scoop,
        StoragePolicy::Base,
        StoragePolicy::Local,
    ];
    let suite = ScenarioSuite::from_grid("root-skew", trials, policies, |policy| {
        let mut cfg = base.clone();
        cfg.policy.kind = policy;
        (policy.to_string(), cfg)
    });
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(policies
        .iter()
        .zip(report.averaged())
        .map(|(&policy, avg)| {
            let skew = avg.root_skew();
            RootSkewRow {
                policy,
                root_tx: skew.root_tx,
                root_rx: skew.root_rx,
                mean_sensor_tx: skew.mean_sensor_tx,
                total_messages: avg.total_messages(),
            }
        })
        .collect())
}

/// One point of the scaling study (networks up to 100 nodes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingRow {
    /// The data source.
    pub source: DataSourceKind,
    /// Number of sensor nodes.
    pub num_nodes: usize,
    /// Total messages over the measured window.
    pub total_messages: u64,
    /// Total messages per sensor node (normalizes for network size).
    pub messages_per_node: f64,
    /// Storage success rate (the paper reports "little overall effect on loss
    /// rate" as the network grows).
    pub storage_success: f64,
}

/// Runs the scaling study for SCOOP over the given network sizes and sources.
pub fn scaling(
    base: &ExperimentConfig,
    sizes: &[usize],
    sources: &[DataSourceKind],
    trials: usize,
) -> Result<Vec<ScalingRow>, ScoopError> {
    scaling_with_policy(base, sizes, sources, StoragePolicy::Scoop, trials)
}

/// The scaling study under an explicit storage policy. The large-scale
/// scenarios (thousands of nodes) run HASH: its storage index is static, so
/// the basestation never builds the dense all-pairs cost table a Scoop remap
/// needs — which is what makes 32k-node networks feasible in memory.
pub fn scaling_with_policy(
    base: &ExperimentConfig,
    sizes: &[usize],
    sources: &[DataSourceKind],
    policy: StoragePolicy,
    trials: usize,
) -> Result<Vec<ScalingRow>, ScoopError> {
    let grid: Vec<(DataSourceKind, usize)> = sources
        .iter()
        .flat_map(|&src| sizes.iter().map(move |&n| (src, n)))
        .collect();
    let suite = ScenarioSuite::from_grid("scaling", trials, grid.iter().copied(), |(source, n)| {
        let mut cfg = base.clone();
        cfg.policy.kind = policy;
        cfg.workload.data_source = source;
        cfg.num_nodes = n;
        (format!("{source}/{n}-nodes"), cfg)
    });
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(grid
        .iter()
        .zip(report.averaged())
        .map(|(&(source, n), avg)| ScalingRow {
            source,
            num_nodes: n,
            total_messages: avg.total_messages(),
            messages_per_node: avg.total_messages() as f64 / n.max(1) as f64,
            storage_success: avg.storage.storage_success(),
        })
        .collect())
}

/// Convenience: a full default-parameter SCOOP run (used by several benches
/// and the quickstart example).
pub fn default_scoop_run(base: &ExperimentConfig, trials: usize) -> Result<RunResult, ScoopError> {
    let mut cfg = base.clone();
    cfg.policy.kind = StoragePolicy::Scoop;
    let suite = ScenarioSuite::new("default-scoop", trials).scenario("scoop", cfg);
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(report
        .results
        .into_iter()
        .next()
        .expect("one scenario")
        .averaged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn reliability_rates_are_sane_for_scoop() {
        let rows = reliability(&quick_base(), &[StoragePolicy::Scoop], 1).unwrap();
        let r = &rows[0];
        assert!(r.storage_success > 0.5 && r.storage_success <= 1.0);
        assert!(r.query_success > 0.2 && r.query_success <= 1.0);
        assert!(r.destination_accuracy > 0.3 && r.destination_accuracy <= 1.0);
    }

    #[test]
    fn root_receives_far_more_under_base_than_it_transmits() {
        let rows = root_skew(&quick_base(), 1).unwrap();
        let base_row = rows
            .iter()
            .find(|r| r.policy == StoragePolicy::Base)
            .unwrap();
        assert!(
            base_row.root_rx > base_row.root_tx,
            "the BASE root mostly receives"
        );
        let scoop_row = rows
            .iter()
            .find(|r| r.policy == StoragePolicy::Scoop)
            .unwrap();
        assert!(
            scoop_row.root_tx > base_row.root_tx,
            "the SCOOP root transmits mappings and queries, the BASE root does not"
        );
    }

    #[test]
    fn scaling_runs_multiple_sizes() {
        let rows = scaling(&quick_base(), &[8, 16], &[DataSourceKind::Gaussian], 1).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].total_messages > rows[0].total_messages,
            "more nodes, more traffic"
        );
    }

    #[test]
    fn scaling_with_policy_runs_the_hash_baseline() {
        let rows = scaling_with_policy(
            &quick_base(),
            &[8],
            &[DataSourceKind::Gaussian],
            StoragePolicy::Hash,
            1,
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].total_messages > 0);
        assert!(rows[0].storage_success > 0.0 && rows[0].storage_success <= 1.0);
    }
}
