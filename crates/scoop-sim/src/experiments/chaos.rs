//! The chaos scenario family: reliability under scheduled adversarial
//! faults, measured *per phase* rather than over the whole run.
//!
//! Each scenario splits the measured window (everything after warmup) into
//! three phases — `before` the fault, `during` its window, and `after` it
//! heals — and reports storage / query success per phase, next to an
//! unfaulted control run of the same seed measured over the same phase
//! boundaries. The interesting claims are comparative: success before the
//! fault matches the control, degrades (boundedly) during it, and recovers
//! after the heal.
//!
//! The [`SweepRunner`](crate::sweep::SweepRunner) only runs experiments to
//! completion, so this module drives engines directly: build, run to each
//! phase boundary, snapshot every node's cumulative counters, and difference
//! consecutive snapshots into per-phase rates.

use crate::node::SimNode;
use crate::runner::build_engine;
use scoop_net::Engine;
use scoop_types::{
    ChurnEvent, ExperimentConfig, NodeId, PartitionWindow, ScoopError, SimDuration, SimTime,
    SinkOutage, StoragePolicy,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three chaos scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosScenario {
    /// A seeded network partition isolating half the sensors for the middle
    /// phase, then healing.
    Partition,
    /// A two-sink federation whose promoted sink crashes for the middle
    /// phase; the root must detect the death and absorb its attribute range.
    SinkFailover,
    /// A mass-churn event at the middle-phase boundary: a quarter of the
    /// sensors dies permanently while a quarter's worth of fresh nodes joins.
    Churn,
}

impl ChaosScenario {
    /// Stable lowercase name used in row keys and artifact files.
    pub fn slug(self) -> &'static str {
        match self {
            ChaosScenario::Partition => "partition",
            ChaosScenario::SinkFailover => "failover",
            ChaosScenario::Churn => "churn",
        }
    }
}

impl fmt::Display for ChaosScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// The phase names, in order.
pub const PHASES: [&str; 3] = ["before", "during", "after"];

/// One phase of one chaos scenario: success rates for the faulted run next
/// to the unfaulted (and, for failover, single-sink) control.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosRow {
    /// The scenario slug (`partition`, `failover`, `churn`).
    pub scenario: String,
    /// The phase (`before`, `during`, `after`).
    pub phase: String,
    /// Fraction of readings sampled in this phase that were stored.
    pub storage_success: f64,
    /// Fraction of expected query replies that arrived, for queries whose
    /// targets were counted in this phase.
    pub query_success: f64,
    /// Storage success of the control run over the same phase window.
    pub control_storage_success: f64,
    /// Query success of the control run over the same phase window.
    pub control_query_success: f64,
    /// Readings sampled in this phase of the faulted run (averaged).
    pub sampled: u64,
    /// Reply targets counted in this phase of the faulted run (averaged).
    pub targets: u64,
}

/// The shared chaos base: SCOOP, with the measured window doubled so the
/// fault, its aftermath, and a steady-state recovery tail all fit. Both the
/// faulted and the control run use this, so their phase windows coincide.
pub fn chaos_base(base: &ExperimentConfig) -> ExperimentConfig {
    let mut cfg = base.clone();
    cfg.policy.kind = StoragePolicy::Scoop;
    let w = cfg.warmup.as_secs();
    let m = cfg.duration.as_secs().saturating_sub(w);
    cfg.duration = SimDuration::from_secs(w + 2 * m);
    cfg
}

/// Phase boundaries `(warmup_end, fault_start, aftermath_end, run_end)`,
/// derived from the faulted config's own schedule.
///
/// The `during` phase runs from the first fault's start to one remap
/// interval *past* the last fault's end — the heal transient (routing-tree
/// repair, the first post-heal remap round, redelivery of whatever survived)
/// is part of the degraded period, so the `after` phase measures genuine
/// steady-state recovery. A churn event is instantaneous but permanent; its
/// "end" is one remap interval after the event, the time the joiners need to
/// be integrated. A fault-free config (the control) falls back to thirds,
/// but the control is always measured over its faulted twin's boundaries.
pub fn phase_boundaries(cfg: &ExperimentConfig) -> (SimTime, SimTime, SimTime, SimTime) {
    let w = cfg.warmup.as_secs();
    let d = cfg.duration.as_secs();
    let remap = cfg.policy.scoop.remap_interval.as_secs();
    let mut start = d;
    let mut end = w;
    for p in &cfg.faults.partitions {
        start = start.min(p.start.as_secs());
        end = end.max(p.end.as_secs());
    }
    for s in &cfg.faults.sink_outages {
        start = start.min(s.start.as_secs());
        end = end.max(s.end.as_secs());
    }
    for fw in &cfg.faults.windows {
        start = start.min(fw.start.as_secs());
        end = end.max(fw.end.as_secs());
    }
    for c in &cfg.faults.churn {
        start = start.min(c.at.as_secs());
        end = end.max(c.at.as_secs() + remap);
    }
    if cfg.faults.is_empty() {
        let m = d.saturating_sub(w);
        start = w + m / 3;
        end = w + m * 2 / 3;
    }
    let during_end = (end + remap).min(d.saturating_sub(1)).max(start + 1);
    (
        SimTime::from_secs(w),
        SimTime::from_secs(start.clamp(w + 1, during_end - 1)),
        SimTime::from_secs(during_end),
        SimTime::from_secs(d),
    )
}

/// The faulted configuration for one scenario, derived from
/// [`chaos_base`]. With `m` the (doubled) measured window:
///
/// * `partition` — a seeded cut isolating half the sensors over
///   `[0.25 m, 0.5 m]`.
/// * `failover` — a mid-network sensor promoted to a second sink crashes
///   over `[0.25 m, 0.6 m]`; the window exceeds the failover timeout
///   (1.5 remap intervals) plus a full remap round, so the root provably
///   declares it dead and absorbs its attribute range before the restart.
/// * `churn` — at `0.25 m`, a quarter of the sensors dies permanently and a
///   quarter's worth of fresh nodes joins.
pub fn scenario_config(base: &ExperimentConfig, scenario: ChaosScenario) -> ExperimentConfig {
    let mut cfg = chaos_base(base);
    let w = cfg.warmup.as_secs();
    let m = cfg.duration.as_secs().saturating_sub(w);
    let start = w + m / 4;
    match scenario {
        ChaosScenario::Partition => {
            cfg.faults
                .partitions
                .push(PartitionWindow::seeded(start, w + m / 2, 0.5));
        }
        ChaosScenario::SinkFailover => {
            let peer = (cfg.num_nodes / 2).max(1) as u16;
            cfg.policy.basestations = vec![NodeId(0), NodeId(peer)];
            cfg.policy.scoop.failover_timeout =
                SimDuration::from_secs(cfg.policy.scoop.remap_interval.as_secs() * 3 / 2);
            cfg.faults
                .sink_outages
                .push(SinkOutage::new(start, w + m * 6 / 10, peer));
        }
        ChaosScenario::Churn => {
            cfg.faults.churn.push(ChurnEvent::new(start, 0.25, 0.25));
        }
    }
    cfg
}

/// The control configuration: same (doubled) base, SCOOP, no faults — and
/// single-sink, so the failover scenario is compared against the classic
/// deployment it must stay within tolerance of.
pub fn control_config(base: &ExperimentConfig) -> ExperimentConfig {
    chaos_base(base)
}

/// Cumulative network-wide counters at one instant.
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    sampled: u64,
    stored: u64,
    targets: u64,
    replies: u64,
}

fn snapshot(engine: &Engine<SimNode>) -> Counters {
    let mut c = Counters::default();
    for (_, node) in engine.iter_nodes() {
        c.sampled += node.metrics.sampled;
        c.stored += node.metrics.stored;
        let (_, targets, replies, _, answered_locally) = node.query_outcomes();
        c.targets += targets;
        c.replies += replies + answered_locally;
    }
    c
}

/// Per-phase success rates plus the faulted-run denominators.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseRates {
    storage: f64,
    query: f64,
    sampled: u64,
    targets: u64,
}

/// Runs one configuration once, snapshotting at every phase boundary, and
/// returns the three per-phase rates. Boundaries are passed in (always the
/// *faulted* config's), so faulted and control runs are differenced over
/// identical windows.
fn run_phased(
    cfg: &ExperimentConfig,
    boundaries: (SimTime, SimTime, SimTime, SimTime),
) -> Result<[PhaseRates; 3], ScoopError> {
    let (warmup, b1, b2, end) = boundaries;
    let mut engine = build_engine(cfg)?;
    engine.run_until(warmup);
    let mut prev = snapshot(&engine);
    let mut phases = [PhaseRates::default(); 3];
    for (slot, boundary) in phases.iter_mut().zip([b1, b2, end]) {
        engine.run_until(boundary);
        let cur = snapshot(&engine);
        let sampled = cur.sampled - prev.sampled;
        let stored = cur.stored - prev.stored;
        let targets = cur.targets - prev.targets;
        let replies = cur.replies - prev.replies;
        *slot = PhaseRates {
            storage: if sampled == 0 {
                1.0
            } else {
                stored as f64 / sampled as f64
            },
            query: if targets == 0 {
                1.0
            } else {
                (replies as f64 / targets as f64).min(1.0)
            },
            sampled,
            targets,
        };
        prev = cur;
    }
    crate::runner::record_events_dispatched(engine.events_processed());
    Ok(phases)
}

/// Runs one chaos scenario (`trials` seeds, averaged) and returns one row
/// per phase.
pub fn chaos(
    base: &ExperimentConfig,
    scenario: ChaosScenario,
    trials: usize,
) -> Result<Vec<ChaosRow>, ScoopError> {
    let trials = trials.max(1);
    let mut faulted_acc = [PhaseRates::default(); 3];
    let mut control_acc = [PhaseRates::default(); 3];
    for t in 0..trials {
        let mut faulted = scenario_config(base, scenario);
        faulted.seed = base.seed + t as u64;
        let mut control = control_config(base);
        control.seed = base.seed + t as u64;
        let boundaries = phase_boundaries(&faulted);
        for (acc, run) in [
            (&mut faulted_acc, run_phased(&faulted, boundaries)?),
            (&mut control_acc, run_phased(&control, boundaries)?),
        ] {
            for (slot, phase) in acc.iter_mut().zip(run) {
                slot.storage += phase.storage;
                slot.query += phase.query;
                slot.sampled += phase.sampled;
                slot.targets += phase.targets;
            }
        }
    }
    let k = trials as f64;
    Ok(PHASES
        .iter()
        .enumerate()
        .map(|(i, &phase)| ChaosRow {
            scenario: scenario.slug().to_string(),
            phase: phase.to_string(),
            storage_success: faulted_acc[i].storage / k,
            query_success: faulted_acc[i].query / k,
            control_storage_success: control_acc[i].storage / k,
            control_query_success: control_acc[i].query / k,
            sampled: ((faulted_acc[i].sampled as f64) / k).round() as u64,
            targets: ((faulted_acc[i].targets as f64) / k).round() as u64,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn phase_boundaries_track_the_fault_schedule() {
        // Quick scale doubles to a 1200s measured window (1320s run).
        for scenario in [
            ChaosScenario::Partition,
            ChaosScenario::SinkFailover,
            ChaosScenario::Churn,
        ] {
            let cfg = scenario_config(&quick_base(), scenario);
            let (w, b1, b2, end) = phase_boundaries(&cfg);
            assert_eq!(w, SimTime::from_secs(120));
            assert_eq!(end, SimTime::from_secs(1320));
            assert!(w < b1 && b1 < b2 && b2 < end, "{scenario}");
            // Every fault starts at 0.25m = 420s.
            assert_eq!(b1, SimTime::from_secs(420), "{scenario}");
        }
        // The during phase extends one remap interval (120s) past the heal:
        // partition heals at 720, failover restarts at 840, churn "ends" one
        // remap after the 420s event.
        let at = |s| phase_boundaries(&scenario_config(&quick_base(), s)).2;
        assert_eq!(at(ChaosScenario::Partition), SimTime::from_secs(840));
        assert_eq!(at(ChaosScenario::SinkFailover), SimTime::from_secs(960));
        assert_eq!(at(ChaosScenario::Churn), SimTime::from_secs(660));
    }

    #[test]
    fn failover_outage_outlasts_detection() {
        // The outage must span the failover timeout plus a full remap round,
        // or the root can never declare the peer dead before it restarts.
        let cfg = scenario_config(&quick_base(), ChaosScenario::SinkFailover);
        let outage = &cfg.faults.sink_outages[0];
        let timeout = cfg.policy.scoop.effective_failover_timeout().as_secs();
        let remap = cfg.policy.scoop.remap_interval.as_secs();
        assert!(outage.end.as_secs() - outage.start.as_secs() > timeout + remap);
    }

    #[test]
    fn scenario_configs_validate_and_schedule_the_fault_in_the_window() {
        let base = quick_base();
        for scenario in [
            ChaosScenario::Partition,
            ChaosScenario::SinkFailover,
            ChaosScenario::Churn,
        ] {
            let cfg = scenario_config(&base, scenario);
            cfg.validate().unwrap_or_else(|e| panic!("{scenario}: {e}"));
            assert!(!cfg.faults.is_empty(), "{scenario} schedules a fault");
        }
        let failover = scenario_config(&base, ChaosScenario::SinkFailover);
        assert_eq!(failover.policy.basestations.len(), 2);
        assert_eq!(
            failover.faults.sink_outages[0].sink,
            failover.policy.basestations[1]
        );
        // Control is fault-free and single-sink regardless of scenario.
        let control = control_config(&base);
        assert!(control.faults.is_empty());
        assert!(control.policy.basestations.is_empty());
    }

    #[test]
    fn partition_degrades_during_and_recovers_after() {
        let rows = chaos(&quick_base(), ChaosScenario::Partition, 1).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].phase, "before");
        let before = &rows[0];
        let after = &rows[2];
        // Before the fault the faulted run IS the control run.
        assert!((before.storage_success - before.control_storage_success).abs() < 1e-9);
        assert!((before.query_success - before.control_query_success).abs() < 1e-9);
        // The cut visibly degrades storage while it is open.
        let during = &rows[1];
        assert!(
            during.storage_success < during.control_storage_success - 0.1,
            "during-phase storage {} should degrade vs control {}",
            during.storage_success,
            during.control_storage_success
        );
        // Post-heal recovery: within 90 % of the unfaulted control.
        assert!(
            after.storage_success >= after.control_storage_success * 0.9,
            "post-heal storage {} vs control {}",
            after.storage_success,
            after.control_storage_success
        );
        assert!(
            after.query_success >= after.control_query_success * 0.9,
            "post-heal query {} vs control {}",
            after.query_success,
            after.control_query_success
        );
    }

    #[test]
    fn chaos_rows_are_deterministic_per_seed() {
        let a = chaos(&quick_base(), ChaosScenario::Churn, 1).unwrap();
        let b = chaos(&quick_base(), ChaosScenario::Churn, 1).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.storage_success, y.storage_success);
            assert_eq!(x.query_success, y.query_success);
            assert_eq!(x.sampled, y.sampled);
        }
    }
}
