//! Range and aggregate query workloads.
//!
//! Two grids beyond the paper's point-query evaluation. `range_width` sweeps
//! the fixed range-query width per policy (the `Range` workload kind — the
//! steady-state cousin of the Figure 4 selectivity sweep). `aggregate_ops`
//! runs each aggregate operator per policy: SCOOP routes to the value owners
//! and each owner sends one partial back, LOCAL floods and partial aggregates
//! combine hop-by-hop up the routing tree (TAG-style), BASE answers from the
//! basestation's own store for free.

use crate::sweep::{ScenarioSuite, SweepRunner};
use scoop_types::{AggregateOp, ExperimentConfig, ScoopError, StoragePolicy, WorkloadKind};
use serde::{Deserialize, Serialize};

/// One point of the range-width sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RangeWidthRow {
    /// The storage policy.
    pub policy: StoragePolicy,
    /// The fixed query width as a fraction of the value domain.
    pub width_frac: f64,
    /// The measured fraction of sensor nodes contacted per query.
    pub fraction_nodes_queried: f64,
    /// Total messages over the measured window.
    pub total_messages: u64,
    /// Fraction of expected replies that arrived.
    pub query_success: f64,
}

/// One point of the aggregate-operator grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AggregateOpsRow {
    /// The storage policy.
    pub policy: StoragePolicy,
    /// Stable operator label (`min`, `max`, `avg`, `p50`).
    pub op: String,
    /// Total messages over the measured window.
    pub total_messages: u64,
    /// Query plus reply/aggregate messages over the measured window.
    pub query_reply_messages: u64,
    /// Fraction of expected replies that arrived.
    pub query_success: f64,
}

/// The policies every workload grid compares (HASH adds nothing here that
/// SCOOP's value routing doesn't already show).
const POLICIES: [StoragePolicy; 3] = [
    StoragePolicy::Scoop,
    StoragePolicy::Local,
    StoragePolicy::Base,
];

/// Runs the range-width sweep: every policy × every width in `width_fracs`,
/// with the workload kind pinned to `Range { width_frac }`.
pub fn range_width(
    base: &ExperimentConfig,
    width_fracs: &[f64],
    trials: usize,
) -> Result<Vec<RangeWidthRow>, ScoopError> {
    let grid: Vec<(StoragePolicy, f64)> = POLICIES
        .into_iter()
        .flat_map(|p| width_fracs.iter().map(move |&f| (p, f)))
        .collect();
    let suite = ScenarioSuite::from_grid(
        "range-width",
        trials,
        grid.iter().copied(),
        |(policy, frac)| {
            let mut cfg = base.clone();
            cfg.policy.kind = policy;
            cfg.workload.kind = WorkloadKind::range(frac);
            (format!("{policy}/width-{frac:.2}"), cfg)
        },
    );
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(grid
        .iter()
        .zip(report.averaged())
        .map(|(&(policy, frac), avg)| RangeWidthRow {
            policy,
            width_frac: frac,
            fraction_nodes_queried: match policy {
                // LOCAL always floods everyone; BASE never queries.
                StoragePolicy::Local => 1.0,
                StoragePolicy::Base => 0.0,
                _ => avg.fraction_nodes_queried(),
            },
            total_messages: avg.total_messages(),
            query_success: avg.queries.query_success(),
        })
        .collect())
}

/// The operators the aggregate grid runs by default.
pub fn default_aggregate_ops() -> Vec<AggregateOp> {
    vec![
        AggregateOp::Min,
        AggregateOp::Max,
        AggregateOp::Avg,
        AggregateOp::Quantile(0.5),
    ]
}

/// Runs the aggregate-operator grid: every policy × every operator in `ops`,
/// with the workload kind pinned to `Aggregate { op, epsilon }` at the
/// default epsilon.
pub fn aggregate_ops(
    base: &ExperimentConfig,
    ops: &[AggregateOp],
    trials: usize,
) -> Result<Vec<AggregateOpsRow>, ScoopError> {
    let grid: Vec<(StoragePolicy, AggregateOp)> = POLICIES
        .into_iter()
        .flat_map(|p| ops.iter().map(move |&op| (p, op)))
        .collect();
    let suite = ScenarioSuite::from_grid(
        "aggregate-ops",
        trials,
        grid.iter().copied(),
        |(policy, op)| {
            let mut cfg = base.clone();
            cfg.policy.kind = policy;
            cfg.workload.kind = WorkloadKind::aggregate(op, WorkloadKind::DEFAULT_EPSILON);
            (format!("{policy}/{}", op.label()), cfg)
        },
    );
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(grid
        .iter()
        .zip(report.averaged())
        .map(|(&(policy, op), avg)| AggregateOpsRow {
            policy,
            op: op.label(),
            total_messages: avg.total_messages(),
            query_reply_messages: avg.messages.query_reply,
            query_success: avg.queries.query_success(),
        })
        .collect())
}

/// The default width points for the range sweep.
pub fn default_range_widths() -> Vec<f64> {
    vec![0.05, 0.25, 0.50, 1.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn range_width_grid_shapes_hold() {
        let rows = range_width(&quick_base(), &[0.05, 0.5], 1).unwrap();
        assert_eq!(rows.len(), 6);
        let row = |p: StoragePolicy, f: f64| {
            rows.iter()
                .find(|r| r.policy == p && (r.width_frac - f).abs() < 1e-9)
                .unwrap()
        };
        // SCOOP targets a subset on narrow ranges; BASE answers for free.
        assert!(row(StoragePolicy::Scoop, 0.05).fraction_nodes_queried < 1.0);
        assert_eq!(row(StoragePolicy::Base, 0.05).fraction_nodes_queried, 0.0);
        assert_eq!(row(StoragePolicy::Base, 0.5).query_success, 1.0);
        // SCOOP beats LOCAL's flood on narrow range queries.
        assert!(
            row(StoragePolicy::Scoop, 0.05).total_messages
                < row(StoragePolicy::Local, 0.05).total_messages
        );
    }

    #[test]
    fn aggregate_grid_covers_every_policy_and_op() {
        let ops = [AggregateOp::Min, AggregateOp::Quantile(0.5)];
        let rows = aggregate_ops(&quick_base(), &ops, 1).unwrap();
        assert_eq!(rows.len(), 6);
        for p in POLICIES {
            for op in ops {
                let r = rows
                    .iter()
                    .find(|r| r.policy == p && r.op == op.label())
                    .unwrap();
                match p {
                    // BASE never touches the network for queries.
                    StoragePolicy::Base => assert_eq!(r.query_reply_messages, 0),
                    // SCOOP and LOCAL both move queries and partials.
                    _ => assert!(r.query_reply_messages > 0, "{p}/{}", r.op),
                }
            }
        }
        // Tree aggregation keeps LOCAL's reply traffic below its point-query
        // flood: every node answers, but partials merge on the way up.
        let local_min = rows
            .iter()
            .find(|r| r.policy == StoragePolicy::Local && r.op == "min")
            .unwrap();
        assert!(local_min.query_success > 0.0);
    }
}
