//! Figure 3: message-count breakdowns.
//!
//! * **Left** — testbed comparison: SCOOP/UNIQUE, SCOOP/GAUSSIAN,
//!   LOCAL/GAUSSIAN, BASE/GAUSSIAN.
//! * **Middle** — simulation over the REAL trace: SCOOP, LOCAL, HASH, BASE.
//! * **Right** — SCOOP over every data source: UNIQUE, EQUAL, REAL,
//!   GAUSSIAN, RANDOM.
//!
//! Each bar in the paper is a stacked breakdown into query/reply, mapping,
//! summary, and data messages; each [`Fig3Row`] carries the same four
//! numbers. The bars are declared as a scenario grid and executed by the
//! parallel [`SweepRunner`](crate::sweep::SweepRunner).

use crate::metrics::MessageBreakdown;
use crate::sweep::{ScenarioSuite, SweepRunner};
use scoop_types::{DataSourceKind, ExperimentConfig, ScoopError, StoragePolicy};
use serde::{Deserialize, Serialize};

/// One bar of Figure 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3Row {
    /// The storage policy.
    pub policy: StoragePolicy,
    /// The data source.
    pub source: DataSourceKind,
    /// The stacked message breakdown.
    pub messages: MessageBreakdown,
    /// Total messages (the bar height).
    pub total: u64,
}

/// Runs one panel of Figure 3: the given `(policy, source)` bars.
fn run_panel(
    name: &str,
    base: &ExperimentConfig,
    combos: &[(StoragePolicy, DataSourceKind)],
    trials: usize,
) -> Result<Vec<Fig3Row>, ScoopError> {
    let suite =
        ScenarioSuite::from_grid(name, trials, combos.iter().copied(), |(policy, source)| {
            let mut cfg = base.clone();
            cfg.policy.kind = policy;
            cfg.workload.data_source = source;
            (format!("{policy}/{source}"), cfg)
        });
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(combos
        .iter()
        .zip(report.averaged())
        .map(|(&(policy, source), avg)| Fig3Row {
            policy,
            source,
            messages: avg.messages,
            total: avg.messages.total(),
        })
        .collect())
}

/// Figure 3 (left): the testbed bars.
pub fn fig3_left(base: &ExperimentConfig, trials: usize) -> Result<Vec<Fig3Row>, ScoopError> {
    run_panel(
        "fig3-left",
        base,
        &[
            (StoragePolicy::Scoop, DataSourceKind::Unique),
            (StoragePolicy::Scoop, DataSourceKind::Gaussian),
            (StoragePolicy::Local, DataSourceKind::Gaussian),
            (StoragePolicy::Base, DataSourceKind::Gaussian),
        ],
        trials,
    )
}

/// Figure 3 (middle): all four policies over the REAL trace.
pub fn fig3_middle(base: &ExperimentConfig, trials: usize) -> Result<Vec<Fig3Row>, ScoopError> {
    let combos: Vec<_> = StoragePolicy::ALL
        .into_iter()
        .map(|p| (p, DataSourceKind::Real))
        .collect();
    run_panel("fig3-middle", base, &combos, trials)
}

/// Figure 3 (right): SCOOP over every data source.
pub fn fig3_right(base: &ExperimentConfig, trials: usize) -> Result<Vec<Fig3Row>, ScoopError> {
    let combos: Vec<_> = DataSourceKind::ALL
        .into_iter()
        .map(|s| (StoragePolicy::Scoop, s))
        .collect();
    run_panel("fig3-right", base, &combos, trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn fig3_left_shape_scoop_beats_local_and_base_on_gaussian() {
        let rows = fig3_left(&quick_base(), 1).unwrap();
        assert_eq!(rows.len(), 4);
        let get = |p: StoragePolicy, s: DataSourceKind| {
            rows.iter()
                .find(|r| r.policy == p && r.source == s)
                .unwrap()
                .total
        };
        let scoop_unique = get(StoragePolicy::Scoop, DataSourceKind::Unique);
        let scoop_gauss = get(StoragePolicy::Scoop, DataSourceKind::Gaussian);
        let local_gauss = get(StoragePolicy::Local, DataSourceKind::Gaussian);
        let base_gauss = get(StoragePolicy::Base, DataSourceKind::Gaussian);
        // The paper's ordering: SCOOP/UNIQUE is cheapest; SCOOP/GAUSSIAN
        // beats LOCAL on the same source.
        assert!(
            scoop_unique <= scoop_gauss,
            "{scoop_unique} vs {scoop_gauss}"
        );
        assert!(scoop_gauss < local_gauss, "{scoop_gauss} vs {local_gauss}");
        // SCOOP < BASE is a paper-scale property (enforced by the fig3-left
        // baseline Match in EXPERIMENTS.md): in this 16-node quick run the
        // calibrated radio makes BASE's flooding cheap while SCOOP's fixed
        // summary/mapping overhead cannot amortize over so few nodes, so
        // only a bounded gap is required here.
        assert!(
            (scoop_gauss as f64) < base_gauss as f64 * 1.25,
            "{scoop_gauss} vs {base_gauss}"
        );
    }

    #[test]
    fn fig3_right_random_is_worst_for_scoop() {
        let rows = fig3_right(&quick_base(), 1).unwrap();
        assert_eq!(rows.len(), 5);
        let total = |s: DataSourceKind| rows.iter().find(|r| r.source == s).unwrap().total;
        // RANDOM has no structure to exploit; UNIQUE has the most.
        assert!(total(DataSourceKind::Unique) < total(DataSourceKind::Random));
        assert!(total(DataSourceKind::Real) <= total(DataSourceKind::Random));
    }
}
