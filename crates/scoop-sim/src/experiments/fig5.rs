//! Figure 5: total cost as a function of the query interval.
//!
//! As queries become rarer (the interval grows), LOCAL becomes dramatically
//! cheaper because its only traffic is query flooding and replies; SCOOP and
//! BASE are largely insensitive because their dominant costs are data and
//! summary traffic.

use crate::sweep::{ScenarioSuite, SweepRunner};
use scoop_types::{ExperimentConfig, ScoopError, SimDuration, StoragePolicy};
use serde::{Deserialize, Serialize};

/// One point of Figure 5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig5Row {
    /// The storage policy.
    pub policy: StoragePolicy,
    /// Seconds between queries.
    pub query_interval_secs: u64,
    /// Total messages over the measured window.
    pub total_messages: u64,
}

/// Runs the Figure 5 sweep over the given query intervals (seconds).
pub fn fig5_query_interval(
    base: &ExperimentConfig,
    intervals_secs: &[u64],
    trials: usize,
) -> Result<Vec<Fig5Row>, ScoopError> {
    let policies = [
        StoragePolicy::Scoop,
        StoragePolicy::Local,
        StoragePolicy::Base,
    ];
    let grid: Vec<(StoragePolicy, u64)> = policies
        .into_iter()
        .flat_map(|p| intervals_secs.iter().map(move |&s| (p, s)))
        .collect();
    let suite = ScenarioSuite::from_grid(
        "fig5-query-interval",
        trials,
        grid.iter().copied(),
        |(policy, secs)| {
            let mut cfg = base.clone();
            cfg.policy.kind = policy;
            cfg.workload.queries.query_interval = SimDuration::from_secs(secs.max(1));
            (format!("{policy}/interval-{secs}s"), cfg)
        },
    );
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(grid
        .iter()
        .zip(report.averaged())
        .map(|(&(policy, secs), avg)| Fig5Row {
            policy,
            query_interval_secs: secs,
            total_messages: avg.total_messages(),
        })
        .collect())
}

/// The default sweep points used by the bench harness (5 s to 50 s, as in the
/// paper's x-axis).
pub fn default_intervals() -> Vec<u64> {
    vec![5, 10, 15, 25, 40, 50]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn local_benefits_most_from_rare_queries() {
        let rows = fig5_query_interval(&quick_base(), &[5, 45], 1).unwrap();
        let total = |p: StoragePolicy, s: u64| {
            rows.iter()
                .find(|r| r.policy == p && r.query_interval_secs == s)
                .unwrap()
                .total_messages as f64
        };
        let local_drop = total(StoragePolicy::Local, 5) / total(StoragePolicy::Local, 45).max(1.0);
        let base_drop = total(StoragePolicy::Base, 5) / total(StoragePolicy::Base, 45).max(1.0);
        assert!(
            local_drop > base_drop,
            "LOCAL should benefit more from rare queries (drop {local_drop:.2}× vs BASE {base_drop:.2}×)"
        );
        // BASE is essentially flat: queries cost it nothing.
        assert!((0.7..=1.4).contains(&base_drop), "BASE drop {base_drop}");
    }
}
