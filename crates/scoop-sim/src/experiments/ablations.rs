//! Ablations of the design choices DESIGN.md calls out: batching, index
//! suppression, the neighbor-shortcut routing rule, and the store-local
//! fallback.
//!
//! These are not figures from the paper, but they isolate the mechanisms the
//! paper credits for parts of its results (e.g. batching is why EQUAL beats
//! RANDOM in Figure 3 right). Each variant is one scenario in a declarative
//! suite executed by the parallel sweep runner.

use crate::sweep::{ScenarioSuite, SweepRunner};
use scoop_types::{DataSourceKind, ExperimentConfig, ScoopError, StoragePolicy};
use serde::{Deserialize, Serialize};

/// One ablation configuration and its cost.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Human-readable name of the variant.
    pub variant: String,
    /// The data source used.
    pub source: DataSourceKind,
    /// Total messages over the measured window.
    pub total_messages: u64,
    /// Data messages only.
    pub data_messages: u64,
    /// Mapping messages only.
    pub mapping_messages: u64,
}

/// A named config mutation enabling one ablation variant.
type Variant = (&'static str, fn(&mut ExperimentConfig));

/// The ablation variants: name plus the config mutation that enables each.
fn variants() -> Vec<Variant> {
    vec![
        ("baseline", |_| {}),
        ("no-batching", |cfg| cfg.policy.scoop.batch_size = 1),
        ("no-index-suppression", |cfg| {
            cfg.policy.scoop.suppress_unchanged_index = false
        }),
        ("no-neighbor-shortcut", |cfg| {
            cfg.policy.scoop.neighbor_shortcut = false
        }),
        ("store-local-fallback", |cfg| {
            cfg.policy.scoop.allow_store_local_fallback = true
        }),
    ]
}

/// Runs the full ablation suite for SCOOP on the given data source.
pub fn ablation_rows(
    base: &ExperimentConfig,
    source: DataSourceKind,
    trials: usize,
) -> Result<Vec<AblationRow>, ScoopError> {
    let variants = variants();
    let suite =
        ScenarioSuite::from_grid("ablations", trials, variants.iter(), |&(name, mutate)| {
            let mut cfg = base.clone();
            cfg.policy.kind = StoragePolicy::Scoop;
            cfg.workload.data_source = source;
            mutate(&mut cfg);
            (name.to_string(), cfg)
        });
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(variants
        .iter()
        .zip(report.averaged())
        .map(|(&(name, _), avg)| AblationRow {
            variant: name.to_string(),
            source,
            total_messages: avg.total_messages(),
            data_messages: avg.messages.data,
            mapping_messages: avg.messages.mapping,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn ablation_suite_produces_all_variants() {
        let rows = ablation_rows(&quick_base(), DataSourceKind::Equal, 1).unwrap();
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = rows.iter().map(|r| r.variant.as_str()).collect();
        assert!(names.contains(&"baseline"));
        assert!(names.contains(&"no-batching"));
        // On EQUAL data everything maps to one owner; disabling batching must
        // send at least as many data messages as the batched baseline.
        let baseline = rows.iter().find(|r| r.variant == "baseline").unwrap();
        let no_batch = rows.iter().find(|r| r.variant == "no-batching").unwrap();
        assert!(no_batch.data_messages >= baseline.data_messages);
    }
}
