//! Ablations of the design choices DESIGN.md calls out: batching, index
//! suppression, the neighbor-shortcut routing rule, and the store-local
//! fallback.
//!
//! These are not figures from the paper, but they isolate the mechanisms the
//! paper credits for parts of its results (e.g. batching is why EQUAL beats
//! RANDOM in Figure 3 right).

use crate::runner::{average_results, run_trials};
use scoop_types::{DataSourceKind, ExperimentConfig, ScoopError, StoragePolicy};
use serde::{Deserialize, Serialize};

/// One ablation configuration and its cost.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Human-readable name of the variant.
    pub variant: String,
    /// The data source used.
    pub source: DataSourceKind,
    /// Total messages over the measured window.
    pub total_messages: u64,
    /// Data messages only.
    pub data_messages: u64,
    /// Mapping messages only.
    pub mapping_messages: u64,
}

fn run_variant(
    name: &str,
    cfg: &ExperimentConfig,
    trials: usize,
) -> Result<AblationRow, ScoopError> {
    let results = run_trials(cfg, trials)?;
    let avg = average_results(&results).expect("at least one trial");
    Ok(AblationRow {
        variant: name.to_string(),
        source: cfg.data_source,
        total_messages: avg.total_messages(),
        data_messages: avg.messages.data,
        mapping_messages: avg.messages.mapping,
    })
}

/// Runs the full ablation suite for SCOOP on the given data source.
pub fn ablation_rows(
    base: &ExperimentConfig,
    source: DataSourceKind,
    trials: usize,
) -> Result<Vec<AblationRow>, ScoopError> {
    let mut cfg = base.clone();
    cfg.policy = StoragePolicy::Scoop;
    cfg.data_source = source;

    let mut rows = Vec::new();
    rows.push(run_variant("baseline", &cfg, trials)?);

    let mut no_batch = cfg.clone();
    no_batch.scoop.batch_size = 1;
    rows.push(run_variant("no-batching", &no_batch, trials)?);

    let mut no_suppress = cfg.clone();
    no_suppress.scoop.suppress_unchanged_index = false;
    rows.push(run_variant("no-index-suppression", &no_suppress, trials)?);

    let mut no_shortcut = cfg.clone();
    no_shortcut.scoop.neighbor_shortcut = false;
    rows.push(run_variant("no-neighbor-shortcut", &no_shortcut, trials)?);

    let mut fallback = cfg.clone();
    fallback.scoop.allow_store_local_fallback = true;
    rows.push(run_variant("store-local-fallback", &fallback, trials)?);

    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn ablation_suite_produces_all_variants() {
        let rows = ablation_rows(&quick_base(), DataSourceKind::Equal, 1).unwrap();
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = rows.iter().map(|r| r.variant.as_str()).collect();
        assert!(names.contains(&"baseline"));
        assert!(names.contains(&"no-batching"));
        // On EQUAL data everything maps to one owner; disabling batching must
        // send at least as many data messages as the batched baseline.
        let baseline = rows.iter().find(|r| r.variant == "baseline").unwrap();
        let no_batch = rows.iter().find(|r| r.variant == "no-batching").unwrap();
        assert!(no_batch.data_messages >= baseline.data_messages);
    }
}
