//! The link-calibration ablation: how the reliability numbers respond to the
//! [`LinkSpec`](scoop_types::LinkSpec) loss knobs.
//!
//! This sweep was the first measured attack on the reproduction's
//! reliability drift (storage/query success ~56 %/~38 % under the legacy
//! loss model vs the paper's ~93 %/~78 %); the full decision now lives in
//! `scoop-lab calibrate`, which grid-searches all four knobs against an
//! explicit objective and ships the winner as `LinkSpec::default()`. This
//! experiment remains in the suite as the quick two-knob response surface
//! (loss floor × decay exponent, the other knobs at the base spec's values)
//! recorded in EXPERIMENTS.md next to the figures.

use crate::sweep::{ScenarioSuite, SweepRunner};
use scoop_types::{ExperimentConfig, ScoopError, StoragePolicy};
use serde::{Deserialize, Serialize};

/// One point of the link-calibration sweep (SCOOP on the base workload).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkCalibrationRow {
    /// Loss probability of the best (zero-distance) links.
    pub loss_floor: f64,
    /// Distance-decay exponent (`1.0` is the legacy linear decay, `2.0` the
    /// calibrated quadratic one).
    pub distance_exponent: f64,
    /// Fraction of sampled readings stored somewhere.
    pub storage_success: f64,
    /// Fraction of expected query replies that reached the basestation.
    pub query_success: f64,
    /// Total messages over the measured window (cheaper links retransmit
    /// less, so cost falls as reliability rises).
    pub total_messages: u64,
}

/// The default sweep grid: the legacy floor (0.22), the calibrated floor
/// (0.10), and a gentler one, each at linear and quadratic decay.
pub fn default_grid() -> Vec<(f64, f64)> {
    let floors = [0.22, 0.10, 0.05];
    let exponents = [1.0, 2.0];
    floors
        .into_iter()
        .flat_map(|f| exponents.into_iter().map(move |e| (f, e)))
        .collect()
}

/// A reduced grid for the regression smoke suite.
pub fn smoke_grid() -> Vec<(f64, f64)> {
    vec![(0.22, 1.0), (0.05, 2.0)]
}

/// Runs the link-calibration sweep for SCOOP over `(loss_floor,
/// distance_exponent)` points.
pub fn link_calibration(
    base: &ExperimentConfig,
    grid: &[(f64, f64)],
    trials: usize,
) -> Result<Vec<LinkCalibrationRow>, ScoopError> {
    let suite = ScenarioSuite::from_grid(
        "link-calibration",
        trials,
        grid.iter().copied(),
        |(floor, exponent)| {
            let mut cfg = base.clone();
            cfg.policy.kind = StoragePolicy::Scoop;
            cfg.link.loss_floor = floor;
            cfg.link.distance_exponent = exponent;
            (format!("floor-{floor:.2}/exp-{exponent:.1}"), cfg)
        },
    );
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(grid
        .iter()
        .zip(report.averaged())
        .map(|(&(floor, exponent), avg)| LinkCalibrationRow {
            loss_floor: floor,
            distance_exponent: exponent,
            storage_success: avg.storage.storage_success(),
            query_success: avg.queries.query_success(),
            total_messages: avg.total_messages(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn loss_knobs_take_effect_and_rows_stay_sane() {
        let rows = link_calibration(&quick_base(), &[(0.22, 1.0), (0.05, 2.0)], 1).unwrap();
        assert_eq!(rows.len(), 2);
        let (calibrated, gentle) = (&rows[0], &rows[1]);
        for row in &rows {
            assert!(row.storage_success > 0.3 && row.storage_success <= 1.0);
            assert!(row.query_success > 0.0 && row.query_success <= 1.0);
            assert!(row.total_messages > 0);
        }
        // The knobs must actually reach the loss model: two different
        // calibrations cannot produce identical runs. (Whether reliability
        // rises monotonically is a paper-scale question — that is what the
        // recorded EXPERIMENTS.md sweep answers — not a 16-node invariant.)
        assert!(
            calibrated.total_messages != gentle.total_messages
                || calibrated.storage_success != gentle.storage_success,
            "changing the loss knobs must change the run"
        );
    }

    #[test]
    fn default_grid_covers_floor_and_exponent() {
        let grid = default_grid();
        assert_eq!(grid.len(), 6);
        assert!(
            grid.contains(&(0.22, 1.0)),
            "the legacy point anchors the sweep"
        );
        assert!(
            grid.contains(&(0.10, 2.0)),
            "the calibrated floor/exponent pair is swept"
        );
        assert!(smoke_grid().len() < grid.len());
    }
}
