//! Figure 4: total cost as a function of the percentage of nodes queried.
//!
//! The paper varies the query width so that queries touch a growing fraction
//! of the network and plots total messages for SCOOP, LOCAL, and BASE. LOCAL
//! is flat (it always floods everyone), BASE is flat (queries are free), and
//! SCOOP grows with selectivity, crossing BASE at around 60 %.

use crate::sweep::{ScenarioSuite, SweepRunner};
use scoop_types::{ExperimentConfig, ScoopError, StoragePolicy};
use serde::{Deserialize, Serialize};

/// One point of Figure 4.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Row {
    /// The storage policy.
    pub policy: StoragePolicy,
    /// The query width as a fraction of the value domain that was requested.
    pub requested_width_frac: f64,
    /// The measured fraction of sensor nodes contacted per query.
    pub fraction_nodes_queried: f64,
    /// Total messages over the measured window.
    pub total_messages: u64,
}

/// Runs the Figure 4 sweep. `width_fracs` are the query widths to try
/// (the paper's x-axis runs from a few percent of nodes up to 100 %).
pub fn fig4_selectivity(
    base: &ExperimentConfig,
    width_fracs: &[f64],
    trials: usize,
) -> Result<Vec<Fig4Row>, ScoopError> {
    let policies = [
        StoragePolicy::Scoop,
        StoragePolicy::Local,
        StoragePolicy::Base,
    ];
    let grid: Vec<(StoragePolicy, f64)> = policies
        .into_iter()
        .flat_map(|p| width_fracs.iter().map(move |&f| (p, f)))
        .collect();
    let suite = ScenarioSuite::from_grid(
        "fig4-selectivity",
        trials,
        grid.iter().copied(),
        |(policy, frac)| {
            let mut cfg = base.clone();
            cfg.policy.kind = policy;
            cfg.workload.queries.min_width_frac = frac;
            cfg.workload.queries.max_width_frac = frac;
            (format!("{policy}/width-{frac:.2}"), cfg)
        },
    );
    let report = SweepRunner::from_env().run(&suite)?;
    Ok(grid
        .iter()
        .zip(report.averaged())
        .map(|(&(policy, frac), avg)| Fig4Row {
            policy,
            requested_width_frac: frac,
            fraction_nodes_queried: match policy {
                // LOCAL always floods everyone; BASE never queries.
                StoragePolicy::Local => 1.0,
                StoragePolicy::Base => 0.0,
                _ => avg.fraction_nodes_queried(),
            },
            total_messages: avg.total_messages(),
        })
        .collect())
}

/// The default sweep points used by the bench harness.
pub fn default_width_fracs() -> Vec<f64> {
    vec![0.02, 0.10, 0.25, 0.50, 0.75, 1.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_base;

    #[test]
    fn local_is_flat_and_scoop_targets_grow_with_selectivity() {
        let rows = fig4_selectivity(&quick_base(), &[0.05, 1.0], 1).unwrap();
        let row = |p: StoragePolicy, f: f64| {
            rows.iter()
                .find(|r| r.policy == p && (r.requested_width_frac - f).abs() < 1e-9)
                .unwrap()
        };
        // LOCAL's cost barely changes with query width (it always floods the
        // whole network and everyone replies).
        let local_narrow = row(StoragePolicy::Local, 0.05).total_messages as f64;
        let local_wide = row(StoragePolicy::Local, 1.0).total_messages as f64;
        assert!(
            (local_wide - local_narrow).abs() / local_narrow.max(1.0) < 0.35,
            "LOCAL should be roughly flat: {local_narrow} vs {local_wide}"
        );
        // SCOOP actually targets a subset of the network on narrow queries
        // (rather than flooding like LOCAL). Note that on *wide* queries the
        // index adapts towards send-to-base, so the per-query fan-out is not
        // monotone in the requested width at this tiny scale — the full-scale
        // Figure 4 bench reports the complete curve.
        let scoop_narrow = row(StoragePolicy::Scoop, 0.05);
        let scoop_wide = row(StoragePolicy::Scoop, 1.0);
        assert!(scoop_narrow.fraction_nodes_queried < 1.0);
        assert!(scoop_wide.fraction_nodes_queried <= 1.0);
        // SCOOP on narrow queries beats LOCAL (the left side of Figure 4).
        assert!((scoop_narrow.total_messages as f64) < local_narrow);
        // BASE is unaffected by query width (queries are free for it).
        let base_narrow = row(StoragePolicy::Base, 0.05).total_messages as f64;
        let base_wide = row(StoragePolicy::Base, 1.0).total_messages as f64;
        assert!((base_wide - base_narrow).abs() / base_narrow.max(1.0) < 0.35);
    }
}
