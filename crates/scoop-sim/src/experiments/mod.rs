//! One module per experiment in the paper's evaluation (Section 6).
//!
//! Every function takes a *base* configuration — [`paper_base`] for the real
//! thing, or [`ExperimentConfig::small_test`](scoop_types::ExperimentConfig::small_test)
//! for quick checks — plus a trial count, and returns the rows of the
//! corresponding figure or table. The benchmark harness in `scoop-bench`
//! calls these and prints the rows; `EXPERIMENTS.md` records the measured
//! numbers next to the paper's.

pub mod ablations;
pub mod chaos;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod link_calibration;
pub mod prose;
pub mod workloads;

use scoop_types::ExperimentConfig;

/// The paper's default configuration (Section 6): 62 nodes, 40 minutes,
/// 15-second sample and query intervals, REAL data.
pub fn paper_base() -> ExperimentConfig {
    ExperimentConfig::paper_defaults()
}

/// A scaled-down configuration for fast sanity runs of every experiment
/// (16 nodes, 12 minutes). The shapes of the results hold; absolute numbers
/// are smaller.
pub fn quick_base() -> ExperimentConfig {
    ExperimentConfig::small_test()
}

pub use ablations::{ablation_rows, AblationRow};
pub use chaos::{chaos, ChaosRow, ChaosScenario};
pub use fig3::{fig3_left, fig3_middle, fig3_right, Fig3Row};
pub use fig4::{fig4_selectivity, Fig4Row};
pub use fig5::{fig5_query_interval, Fig5Row};
pub use link_calibration::{link_calibration, LinkCalibrationRow};
pub use prose::{
    reliability, root_skew, sample_interval_sweep, scaling, scaling_with_policy, ReliabilityRow,
    RootSkewRow, SampleIntervalRow, ScalingRow,
};
pub use workloads::{aggregate_ops, range_width, AggregateOpsRow, RangeWidthRow};
