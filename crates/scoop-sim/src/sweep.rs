//! The parallel, deterministic scenario runner.
//!
//! Every figure in the paper's evaluation is a *sweep*: the same experiment
//! repeated over a grid of configurations (policies × data sources × knob
//! values) and several seeds per point. Runs are completely independent —
//! per-run state is owned and `Send` (see [`crate::runner`]) — so the sweep
//! layer executes them across threads and collects results **by job index**,
//! making the output bit-identical to a sequential run regardless of thread
//! count or completion order.
//!
//! * [`Scenario`] — one named configuration.
//! * [`ScenarioSuite`] — a named list of scenarios plus a trial count; the
//!   declarative form every `experiments::*` module now reduces to.
//! * [`SweepRunner`] — executes a suite (or a bare config grid) over a worker
//!   pool sized by [`SweepRunner::with_threads`], the
//!   `SCOOP_SWEEP_THREADS` environment variable, or the machine's available
//!   parallelism, in that order of precedence.

use crate::metrics::RunResult;
use crate::runner::{average_results, run_experiment};
use scoop_types::{ExperimentConfig, ScoopError};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One named point of a sweep.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable label (used in reports and error messages).
    pub label: String,
    /// The configuration to run.
    pub config: ExperimentConfig,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(label: impl Into<String>, config: ExperimentConfig) -> Self {
        Scenario {
            label: label.into(),
            config,
        }
    }
}

/// A declarative description of one whole sweep.
#[derive(Clone, Debug)]
pub struct ScenarioSuite {
    /// Name of the suite (e.g. `"fig3-left"`).
    pub name: String,
    /// The scenarios, in presentation order.
    pub scenarios: Vec<Scenario>,
    /// Trials per scenario; trial `t` runs with `config.seed + t`, matching
    /// [`crate::runner::run_trials`].
    pub trials: usize,
}

impl ScenarioSuite {
    /// Creates an empty suite running `trials` trials per scenario.
    pub fn new(name: impl Into<String>, trials: usize) -> Self {
        ScenarioSuite {
            name: name.into(),
            scenarios: Vec::new(),
            trials: trials.max(1),
        }
    }

    /// Adds one scenario (builder style).
    pub fn scenario(mut self, label: impl Into<String>, config: ExperimentConfig) -> Self {
        self.scenarios.push(Scenario::new(label, config));
        self
    }

    /// Builds a suite by applying `make` to every grid point. The label is
    /// `make`'s first return; the config its second.
    pub fn from_grid<P>(
        name: impl Into<String>,
        trials: usize,
        points: impl IntoIterator<Item = P>,
        mut make: impl FnMut(P) -> (String, ExperimentConfig),
    ) -> Self {
        let mut suite = ScenarioSuite::new(name, trials);
        for point in points {
            let (label, config) = make(point);
            suite.scenarios.push(Scenario::new(label, config));
        }
        suite
    }

    /// Total number of simulation runs this suite expands to.
    pub fn job_count(&self) -> usize {
        self.scenarios.len() * self.trials
    }
}

/// The result of one scenario: every trial plus their average.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Label copied from the scenario.
    pub label: String,
    /// One result per trial, in seed order.
    pub trials: Vec<RunResult>,
    /// Element-wise average of `trials` (the number each figure plots).
    pub averaged: RunResult,
}

/// The results of a whole suite, in scenario order.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Name copied from the suite.
    pub suite: String,
    /// One entry per scenario, in the suite's order.
    pub results: Vec<ScenarioResult>,
}

impl SweepReport {
    /// The averaged results, in scenario order (the common consumption shape).
    pub fn averaged(&self) -> impl Iterator<Item = &RunResult> {
        self.results.iter().map(|r| &r.averaged)
    }
}

/// Executes sweeps over a fixed-size worker pool.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::from_env()
    }
}

impl SweepRunner {
    /// A runner using exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// A strictly sequential runner (the baseline the parallel path must
    /// match bit for bit).
    pub fn sequential() -> Self {
        SweepRunner::with_threads(1)
    }

    /// Thread count from `SCOOP_SWEEP_THREADS` if set, otherwise the
    /// machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("SCOOP_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        SweepRunner::with_threads(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every config once, in parallel, returning results in input
    /// order. The output is independent of thread count and scheduling: each
    /// run's randomness derives only from its own config, and results are
    /// placed by job index rather than completion order.
    pub fn run_configs(&self, configs: &[ExperimentConfig]) -> Result<Vec<RunResult>, ScoopError> {
        // Fail fast on invalid configs so errors do not depend on which
        // worker happens to reach a bad job first.
        for config in configs {
            config.validate()?;
        }
        let workers = self.threads.min(configs.len()).max(1);
        if workers == 1 {
            return configs.iter().map(run_experiment).collect();
        }

        // Workers pull jobs off a shared counter but collect results into
        // *per-worker* buffers tagged with the job index; the buffers are
        // merged by index after every worker joins. No lock is taken per
        // job (the old `Mutex<Vec<Option<..>>>` serialized every completion),
        // and the output order still depends only on the job indices — never
        // on scheduling.
        let next_job = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<RunResult, ScoopError>>> =
            (0..configs.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut completed: Vec<(usize, Result<RunResult, ScoopError>)> = Vec::new();
                        loop {
                            let job = next_job.fetch_add(1, Ordering::Relaxed);
                            let Some(config) = configs.get(job) else {
                                break;
                            };
                            completed.push((job, run_experiment(config)));
                        }
                        completed
                    })
                })
                .collect();
            for handle in handles {
                for (job, result) in handle.join().expect("sweep worker panicked") {
                    slots[job] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every job index is claimed exactly once"))
            .collect()
    }

    /// Runs a whole suite: `trials` seeds per scenario, every run scheduled
    /// onto the pool at once (so narrow suites with many trials still fill
    /// all workers), averaged per scenario afterwards.
    pub fn run(&self, suite: &ScenarioSuite) -> Result<SweepReport, ScoopError> {
        // Re-clamp here: `trials` is a public field, so a caller can bypass
        // the constructor's max(1) and would otherwise hit the empty-average
        // expect below.
        let trials = suite.trials.max(1);
        let mut jobs = Vec::with_capacity(suite.scenarios.len() * trials);
        for scenario in &suite.scenarios {
            for trial in 0..trials {
                let mut config = scenario.config.clone();
                config.seed = scenario.config.seed + trial as u64;
                jobs.push(config);
            }
        }
        let mut flat = self.run_configs(&jobs)?.into_iter();
        let results = suite
            .scenarios
            .iter()
            .map(|scenario| {
                let trials: Vec<RunResult> = flat.by_ref().take(trials).collect();
                let averaged = average_results(&trials).expect("trials >= 1");
                ScenarioResult {
                    label: scenario.label.clone(),
                    trials,
                    averaged,
                }
            })
            .collect();
        Ok(SweepReport {
            suite: suite.name.clone(),
            results,
        })
    }
}

/// Compile-time proof that whole runs can migrate between threads; this is
/// the property the `Rc<RefCell<...>>` workload sharing used to break.
#[allow(dead_code)]
fn assert_run_state_is_send() {
    fn is_send<T: Send>() {}
    is_send::<scoop_net::Engine<crate::node::SimNode>>();
    is_send::<RunResult>();
    is_send::<ExperimentConfig>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{DataSourceKind, StoragePolicy};

    fn tiny(policy: StoragePolicy, source: DataSourceKind, seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_test();
        cfg.num_nodes = 8;
        cfg.duration = scoop_types::SimDuration::from_mins(6);
        cfg.warmup = scoop_types::SimDuration::from_mins(2);
        cfg.policy.kind = policy;
        cfg.workload.data_source = source;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let configs: Vec<ExperimentConfig> = vec![
            tiny(StoragePolicy::Scoop, DataSourceKind::Unique, 1),
            tiny(StoragePolicy::Base, DataSourceKind::Gaussian, 2),
            tiny(StoragePolicy::Local, DataSourceKind::Random, 3),
            tiny(StoragePolicy::Hash, DataSourceKind::Real, 4),
        ];
        let sequential = SweepRunner::sequential().run_configs(&configs).unwrap();
        let parallel = SweepRunner::with_threads(4).run_configs(&configs).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn suite_trials_match_run_trials_seeding() {
        let cfg = tiny(StoragePolicy::Base, DataSourceKind::Gaussian, 7);
        let suite = ScenarioSuite::new("s", 2).scenario("base", cfg.clone());
        let report = SweepRunner::with_threads(2).run(&suite).unwrap();
        let expected = crate::runner::run_trials(&cfg, 2).unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].trials, expected);
        let averaged = crate::runner::average_results(&expected).unwrap();
        assert_eq!(report.results[0].averaged, averaged);
    }

    #[test]
    fn from_grid_preserves_order() {
        let suite = ScenarioSuite::from_grid("g", 1, [5u64, 9, 13], |seed| {
            (
                format!("seed-{seed}"),
                tiny(StoragePolicy::Base, DataSourceKind::Unique, seed),
            )
        });
        assert_eq!(suite.job_count(), 3);
        let labels: Vec<&str> = suite.scenarios.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["seed-5", "seed-9", "seed-13"]);
        let report = SweepRunner::with_threads(3).run(&suite).unwrap();
        let seeds: Vec<u64> = report
            .results
            .iter()
            .map(|r| r.trials[0].config.seed)
            .collect();
        assert_eq!(seeds, [5, 9, 13]);
    }

    #[test]
    fn invalid_config_fails_the_whole_sweep_deterministically() {
        let mut bad = tiny(StoragePolicy::Scoop, DataSourceKind::Unique, 1);
        bad.num_nodes = 0;
        let configs = vec![tiny(StoragePolicy::Base, DataSourceKind::Unique, 1), bad];
        let err = SweepRunner::with_threads(4).run_configs(&configs);
        assert!(err.is_err());
    }

    #[test]
    fn zero_trials_field_is_clamped_not_panicking() {
        let mut suite = ScenarioSuite::new("z", 1)
            .scenario("base", tiny(StoragePolicy::Base, DataSourceKind::Unique, 3));
        suite.trials = 0; // bypasses the constructor clamp via the pub field
        let report = SweepRunner::sequential().run(&suite).unwrap();
        assert_eq!(report.results[0].trials.len(), 1);
    }

    #[test]
    fn thread_count_is_clamped_and_reported() {
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
        assert_eq!(SweepRunner::sequential().threads(), 1);
        assert!(SweepRunner::from_env().threads() >= 1);
    }
}
