//! Per-run metrics.
//!
//! The paper's headline metric is the total number of messages sent, broken
//! down by kind (Figure 3). The prose experiments additionally report the
//! data-storage success rate (~93 %), the query success rate (~78 %), the
//! fraction of readings that reach their designated owner (~85 %, the rest
//! falling back to the root), and the transmission/reception skew of the root
//! node.

use scoop_types::{ExperimentConfig, MessageStats, NodeId};
use serde::{Deserialize, Serialize};

/// Network-wide message counts by kind over the measured window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MessageBreakdown {
    /// Data messages sent.
    pub data: u64,
    /// Summary messages sent.
    pub summary: u64,
    /// Mapping messages sent.
    pub mapping: u64,
    /// Query plus reply messages sent (one series, as in Figure 3).
    pub query_reply: u64,
}

impl MessageBreakdown {
    /// Builds a breakdown from raw per-kind counters.
    pub fn from_stats(stats: &MessageStats) -> Self {
        MessageBreakdown {
            data: stats.data,
            summary: stats.summary,
            mapping: stats.mapping,
            query_reply: stats.query + stats.reply + stats.aggregate,
        }
    }

    /// Total messages counted by the paper's cost metric.
    pub fn total(&self) -> u64 {
        self.data + self.summary + self.mapping + self.query_reply
    }
}

/// Data-storage metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageMetrics {
    /// Readings sampled by sensors during the measured window.
    pub sampled: u64,
    /// Readings that ended up stored in some node's data buffer.
    pub stored: u64,
    /// Readings stored on the exact owner their data message designated.
    pub stored_at_owner: u64,
    /// Readings that could not reach their owner and fell back to the root
    /// (routing rule 4).
    pub stored_at_base_fallback: u64,
    /// Readings stored locally because the producing node had no complete
    /// index or no route.
    pub stored_local_default: u64,
}

impl StorageMetrics {
    /// Fraction of sampled readings that were successfully stored somewhere.
    pub fn storage_success(&self) -> f64 {
        if self.sampled == 0 {
            return 1.0;
        }
        self.stored as f64 / self.sampled as f64
    }

    /// Of the readings stored under an index, the fraction that reached the
    /// designated owner (the paper reports ~85 %, the rest landing on the
    /// root).
    pub fn destination_accuracy(&self) -> f64 {
        let routed = self.stored_at_owner + self.stored_at_base_fallback;
        if routed == 0 {
            return 1.0;
        }
        self.stored_at_owner as f64 / routed as f64
    }
}

/// Query metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Queries issued by the basestation during the measured window.
    pub issued: u64,
    /// Total nodes addressed across all queries.
    pub targets_total: u64,
    /// Replies that made it back to the basestation.
    pub replies_received: u64,
    /// Matching readings returned to the basestation.
    pub readings_returned: u64,
    /// Queries answered entirely from the basestation's local state (no
    /// network traffic at all).
    pub answered_locally: u64,
}

impl QueryMetrics {
    /// Fraction of expected replies that arrived (the paper reports ~78 %).
    pub fn query_success(&self) -> f64 {
        if self.targets_total == 0 {
            return 1.0;
        }
        (self.replies_received as f64 / self.targets_total as f64).min(1.0)
    }

    /// Average number of sensor nodes contacted per query.
    pub fn mean_targets_per_query(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.targets_total as f64 / self.issued as f64
    }
}

/// Transmission / reception counts of the root (basestation) versus the
/// average sensor node, used for the skew analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RootSkew {
    /// Messages transmitted by the root.
    pub root_tx: u64,
    /// Messages received (addressed) by the root.
    pub root_rx: u64,
    /// Mean messages transmitted per sensor node.
    pub mean_sensor_tx: f64,
    /// Mean messages received per sensor node.
    pub mean_sensor_rx: f64,
}

/// Everything measured in one simulation run.
///
/// `PartialEq` compares every counter bit for bit; the sweep runner's
/// determinism tests rely on this to prove parallel == sequential.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Network-wide message breakdown over the measured (post-warmup) window.
    pub messages: MessageBreakdown,
    /// Per-node total transmissions over the measured window (index = node id).
    pub per_node_tx: Vec<u64>,
    /// Per-node total receptions over the measured window (index = node id).
    pub per_node_rx: Vec<u64>,
    /// Storage metrics.
    pub storage: StorageMetrics,
    /// Query metrics.
    pub queries: QueryMetrics,
    /// Number of storage indices the basestation disseminated (Scoop only).
    pub indices_disseminated: u64,
    /// Number of remap rounds suppressed because the index barely changed.
    pub remaps_suppressed: u64,
    /// Total discrete events the engine dispatched over the whole run
    /// (including warmup) — the denominator of the `events/sec` throughput
    /// number recorded in artifacts and `BENCH_history.jsonl`. Deterministic
    /// per `(config, seed)`, like every other counter here.
    pub events_processed: u64,
}

impl RunResult {
    /// The paper's cost metric for this run.
    pub fn total_messages(&self) -> u64 {
        self.messages.total()
    }

    /// Root-skew summary.
    pub fn root_skew(&self) -> RootSkew {
        let root_tx = self.per_node_tx.first().copied().unwrap_or(0);
        let root_rx = self.per_node_rx.first().copied().unwrap_or(0);
        let sensors = self.per_node_tx.len().saturating_sub(1).max(1) as f64;
        RootSkew {
            root_tx,
            root_rx,
            mean_sensor_tx: self.per_node_tx.iter().skip(1).sum::<u64>() as f64 / sensors,
            mean_sensor_rx: self.per_node_rx.iter().skip(1).sum::<u64>() as f64 / sensors,
        }
    }

    /// Fraction of sensor nodes contacted by the average query.
    pub fn fraction_nodes_queried(&self) -> f64 {
        let sensors = self.config.num_nodes.max(1) as f64;
        self.queries.mean_targets_per_query() / sensors
    }

    /// The node that transmitted the most messages, and its count.
    pub fn busiest_node(&self) -> (NodeId, u64) {
        self.per_node_tx
            .iter()
            .enumerate()
            .max_by_key(|&(_, tx)| *tx)
            .map(|(i, &tx)| (NodeId(i as u16), tx))
            .unwrap_or((NodeId::BASESTATION, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::MessageKind;

    #[test]
    fn breakdown_from_stats_merges_query_and_reply() {
        let mut s = MessageStats::new();
        s.record_n(MessageKind::Data, 10);
        s.record_n(MessageKind::Query, 3);
        s.record_n(MessageKind::Reply, 4);
        s.record_n(MessageKind::Heartbeat, 100);
        let b = MessageBreakdown::from_stats(&s);
        assert_eq!(b.data, 10);
        assert_eq!(b.query_reply, 7);
        assert_eq!(b.total(), 17, "heartbeats never count");
    }

    #[test]
    fn storage_metrics_ratios() {
        let m = StorageMetrics {
            sampled: 100,
            stored: 93,
            stored_at_owner: 80,
            stored_at_base_fallback: 13,
            stored_local_default: 0,
        };
        assert!((m.storage_success() - 0.93).abs() < 1e-9);
        assert!((m.destination_accuracy() - 80.0 / 93.0).abs() < 1e-9);
        let empty = StorageMetrics::default();
        assert_eq!(empty.storage_success(), 1.0);
        assert_eq!(empty.destination_accuracy(), 1.0);
    }

    #[test]
    fn query_metrics_ratios() {
        let q = QueryMetrics {
            issued: 10,
            targets_total: 50,
            replies_received: 39,
            readings_returned: 200,
            answered_locally: 2,
        };
        assert!((q.query_success() - 0.78).abs() < 1e-9);
        assert!((q.mean_targets_per_query() - 5.0).abs() < 1e-9);
        assert_eq!(QueryMetrics::default().query_success(), 1.0);
    }

    #[test]
    fn run_result_root_skew_and_busiest() {
        let cfg = ExperimentConfig::small_test();
        let r = RunResult {
            config: cfg,
            messages: MessageBreakdown::default(),
            per_node_tx: vec![100, 10, 30],
            per_node_rx: vec![200, 5, 5],
            storage: StorageMetrics::default(),
            queries: QueryMetrics::default(),
            indices_disseminated: 0,
            remaps_suppressed: 0,
            events_processed: 0,
        };
        let skew = r.root_skew();
        assert_eq!(skew.root_tx, 100);
        assert_eq!(skew.root_rx, 200);
        assert!((skew.mean_sensor_tx - 20.0).abs() < 1e-9);
        assert_eq!(r.busiest_node().0, NodeId(0));
    }
}
