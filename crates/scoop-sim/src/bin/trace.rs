//! Diagnostic tool: runs one experiment in 30-second simulated steps and
//! prints the cumulative per-kind transmission counters after each step.
//!
//! ```bash
//! cargo run -p scoop-sim --bin trace [-- policy] [source] [nodes]
//! ```

use scoop_sim::build_engine;
use scoop_types::{DataSourceKind, ExperimentConfig, SimDuration, SimTime, StoragePolicy};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExperimentConfig::small_test();
    cfg.policy = match args.first().map(String::as_str) {
        Some("local") => StoragePolicy::Local,
        Some("base") => StoragePolicy::Base,
        Some("hash") => StoragePolicy::Hash,
        _ => StoragePolicy::Scoop,
    };
    cfg.data_source = match args.get(1).map(String::as_str) {
        Some("unique") => DataSourceKind::Unique,
        Some("equal") => DataSourceKind::Equal,
        Some("random") => DataSourceKind::Random,
        Some("gaussian") => DataSourceKind::Gaussian,
        _ => DataSourceKind::Real,
    };
    if let Some(n) = args.get(2).and_then(|s| s.parse().ok()) {
        cfg.num_nodes = n;
    }

    let mut engine = build_engine(&cfg).expect("valid config");
    println!(
        "policy={} source={} nodes={} duration={}",
        cfg.policy, cfg.data_source, cfg.num_nodes, cfg.duration
    );
    let start = Instant::now();
    let step = SimDuration::from_secs(5);
    let mut now = SimTime::ZERO;
    while now < SimTime::ZERO + cfg.duration {
        now += step;
        engine.run_until(now);
        let tx = engine.stats().total_tx();
        println!(
            "t={:>6}s wall={:>7.1}s events={:<9} pending={:<7} data={:<7} summary={:<6} mapping={:<6} query={:<6} reply={:<6} hb={:<6}",
            now.as_secs(),
            start.elapsed().as_secs_f64(),
            engine.events_processed(),
            engine.pending_events(),
            tx.data,
            tx.summary,
            tx.mapping,
            tx.query,
            tx.reply,
            tx.heartbeat
        );
    }
    println!("done in {:.1}s wall", start.elapsed().as_secs_f64());
}
