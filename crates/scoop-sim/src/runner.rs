//! Builds and runs whole-network simulations from a
//! [`ScenarioSpec`](scoop_types::ScenarioSpec) (aka the legacy
//! [`ExperimentConfig`] alias). Engine construction is delegated to
//! [`SimBuilder`](crate::builder::SimBuilder), so every axis — topology
//! family, loss model, faults — honors the spec rather than being hardcoded
//! here.

use crate::builder::{assemble, SimBuilder};
use crate::metrics::{MessageBreakdown, QueryMetrics, RunResult, StorageMetrics};
use crate::node::SimNode;
use scoop_net::{Engine, LinkModel, Topology};
use scoop_types::{ExperimentConfig, MessageStats, NodeId, ScoopError, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of engine events dispatched by every experiment run
/// (any thread). `run_built_experiment` — the single chokepoint every sweep,
/// lab, and bench path funnels through — adds each finished engine's total
/// here, so a harness can compute events-per-experiment as a snapshot delta
/// without threading a counter through every experiment function.
static EVENTS_DISPATCHED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide dispatched-event counter (monotonic).
pub fn events_dispatched_total() -> u64 {
    EVENTS_DISPATCHED.load(Ordering::Relaxed)
}

/// Adds a finished engine's event total to the process-wide counter. For
/// harnesses (like the phased chaos runner) that drive engines directly
/// instead of going through [`run_built_experiment`].
pub(crate) fn record_events_dispatched(events: u64) {
    EVENTS_DISPATCHED.fetch_add(events, Ordering::Relaxed);
}

/// Builds the topology, link model, node state machines, and engine for one
/// experiment run, as described by every axis of the spec.
pub fn build_engine(config: &ExperimentConfig) -> Result<Engine<SimNode>, ScoopError> {
    SimBuilder::new(config.clone()).build()
}

/// Builds an engine over an explicit topology and link model (used by tests
/// and by ablation experiments that perturb the network by hand). The spec's
/// fault axis still applies; its topology and link axes are ignored in favor
/// of the arguments.
pub fn build_engine_with(
    config: &ExperimentConfig,
    topology: Topology,
    links: LinkModel,
) -> Result<Engine<SimNode>, ScoopError> {
    assemble(config, topology, links)
}

fn stats_diff(after: &MessageStats, before: &MessageStats) -> MessageStats {
    MessageStats {
        data: after.data - before.data,
        summary: after.summary - before.summary,
        mapping: after.mapping - before.mapping,
        query: after.query - before.query,
        reply: after.reply - before.reply,
        aggregate: after.aggregate - before.aggregate,
        heartbeat: after.heartbeat - before.heartbeat,
    }
}

/// Runs one experiment to completion and extracts its metrics.
///
/// Messages are counted over the *measured* window (after the stabilization
/// warmup), matching the paper's methodology.
pub fn run_experiment(config: &ExperimentConfig) -> Result<RunResult, ScoopError> {
    run_built_experiment(config, build_engine(config)?)
}

/// Runs an already-built engine to completion and extracts its metrics;
/// `config` must be the spec the engine was built from. Exposed so harnesses
/// that construct engines by hand (explicit topologies, perturbed link
/// models) share the exact measurement path — the equivalence tests compare
/// the builder path against hand construction through this function.
pub fn run_built_experiment(
    config: &ExperimentConfig,
    mut engine: Engine<SimNode>,
) -> Result<RunResult, ScoopError> {
    let warmup_end = SimTime::ZERO + config.warmup;
    engine.run_until(warmup_end);

    // Snapshot per-node counters at the end of warmup.
    let n = engine.topology().len();
    let warm_tx: Vec<MessageStats> = (0..n)
        .map(|i| engine.stats().node(NodeId(i as u16)).tx)
        .collect();
    let warm_rx: Vec<MessageStats> = (0..n)
        .map(|i| engine.stats().node(NodeId(i as u16)).rx)
        .collect();

    engine.run_until(SimTime::ZERO + config.duration);

    let mut network = MessageStats::default();
    let mut per_node_tx = Vec::with_capacity(n);
    let mut per_node_rx = Vec::with_capacity(n);
    for i in 0..n {
        let id = NodeId(i as u16);
        let tx = stats_diff(&engine.stats().node(id).tx, &warm_tx[i]);
        let rx = stats_diff(&engine.stats().node(id).rx, &warm_rx[i]);
        network += tx;
        per_node_tx.push(tx.cost());
        per_node_rx.push(rx.cost());
    }

    // Storage metrics from every node's local counters.
    let mut storage = StorageMetrics::default();
    for (_, node) in engine.iter_nodes() {
        let m = node.metrics;
        storage.sampled += m.sampled;
        storage.stored += m.stored;
        storage.stored_at_owner += m.stored_as_owner;
        storage.stored_at_base_fallback += m.stored_base_fallback;
        storage.stored_local_default += m.stored_local_default;
    }

    // Query metrics summed over every sink (non-sinks report zeros; a
    // single-sink run reads exactly the node-0 counters it always did).
    let mut queries = QueryMetrics::default();
    let mut indices_disseminated = 0;
    let mut remaps_suppressed = 0;
    for (_, node) in engine.iter_nodes() {
        let (issued, targets, replies, readings, local) = node.query_outcomes();
        queries.issued += issued;
        queries.targets_total += targets;
        queries.replies_received += replies;
        queries.readings_returned += readings;
        queries.answered_locally += local;
        indices_disseminated += node.indices_disseminated();
        remaps_suppressed += node.remaps_suppressed();
    }

    let events_processed = engine.events_processed();
    EVENTS_DISPATCHED.fetch_add(events_processed, Ordering::Relaxed);

    Ok(RunResult {
        config: config.clone(),
        messages: MessageBreakdown::from_stats(&network),
        per_node_tx,
        per_node_rx,
        storage,
        queries,
        indices_disseminated,
        remaps_suppressed,
        events_processed,
    })
}

/// Runs `trials` runs of the same configuration with different seeds
/// (`config.seed`, `+1`, `+2`, ...) and returns every result.
pub fn run_trials(config: &ExperimentConfig, trials: usize) -> Result<Vec<RunResult>, ScoopError> {
    let mut results = Vec::with_capacity(trials);
    for t in 0..trials.max(1) {
        let mut cfg = config.clone();
        cfg.seed = config.seed + t as u64;
        results.push(run_experiment(&cfg)?);
    }
    Ok(results)
}

/// Element-wise average of several runs of the same configuration (the paper
/// averages three trials). Per-node vectors are averaged pairwise; counters
/// are averaged as floating point and rounded.
pub fn average_results(results: &[RunResult]) -> Option<RunResult> {
    let first = results.first()?;
    let k = results.len() as f64;
    let avg_u64 = |f: &dyn Fn(&RunResult) -> u64| -> u64 {
        (results.iter().map(|r| f(r) as f64).sum::<f64>() / k).round() as u64
    };
    let n = first.per_node_tx.len();
    let mut per_node_tx = vec![0u64; n];
    let mut per_node_rx = vec![0u64; n];
    for i in 0..n {
        per_node_tx[i] = (results
            .iter()
            .map(|r| *r.per_node_tx.get(i).unwrap_or(&0) as f64)
            .sum::<f64>()
            / k)
            .round() as u64;
        per_node_rx[i] = (results
            .iter()
            .map(|r| *r.per_node_rx.get(i).unwrap_or(&0) as f64)
            .sum::<f64>()
            / k)
            .round() as u64;
    }
    Some(RunResult {
        config: first.config.clone(),
        messages: MessageBreakdown {
            data: avg_u64(&|r| r.messages.data),
            summary: avg_u64(&|r| r.messages.summary),
            mapping: avg_u64(&|r| r.messages.mapping),
            query_reply: avg_u64(&|r| r.messages.query_reply),
        },
        per_node_tx,
        per_node_rx,
        storage: StorageMetrics {
            sampled: avg_u64(&|r| r.storage.sampled),
            stored: avg_u64(&|r| r.storage.stored),
            stored_at_owner: avg_u64(&|r| r.storage.stored_at_owner),
            stored_at_base_fallback: avg_u64(&|r| r.storage.stored_at_base_fallback),
            stored_local_default: avg_u64(&|r| r.storage.stored_local_default),
        },
        queries: QueryMetrics {
            issued: avg_u64(&|r| r.queries.issued),
            targets_total: avg_u64(&|r| r.queries.targets_total),
            replies_received: avg_u64(&|r| r.queries.replies_received),
            readings_returned: avg_u64(&|r| r.queries.readings_returned),
            answered_locally: avg_u64(&|r| r.queries.answered_locally),
        },
        indices_disseminated: avg_u64(&|r| r.indices_disseminated),
        remaps_suppressed: avg_u64(&|r| r.remaps_suppressed),
        events_processed: avg_u64(&|r| r.events_processed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{DataSourceKind, StoragePolicy};

    fn small(policy: StoragePolicy, source: DataSourceKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_test();
        cfg.policy.kind = policy;
        cfg.workload.data_source = source;
        cfg
    }

    #[test]
    fn base_policy_ships_data_and_nothing_else() {
        let r = run_experiment(&small(StoragePolicy::Base, DataSourceKind::Gaussian)).unwrap();
        assert!(r.messages.data > 0, "BASE must send data messages");
        assert_eq!(r.messages.summary, 0);
        assert_eq!(r.messages.mapping, 0);
        assert_eq!(r.messages.query_reply, 0, "BASE answers queries for free");
        assert!(r.storage.sampled > 0);
    }

    #[test]
    fn local_policy_sends_only_query_traffic() {
        let r = run_experiment(&small(StoragePolicy::Local, DataSourceKind::Gaussian)).unwrap();
        assert_eq!(
            r.messages.data, 0,
            "LOCAL stores everything at the producer"
        );
        assert_eq!(r.messages.summary, 0);
        assert_eq!(r.messages.mapping, 0);
        assert!(
            r.messages.query_reply > 0,
            "LOCAL floods queries and replies"
        );
        // Every sampled reading is stored (locally), so storage never fails.
        assert_eq!(r.storage.sampled, r.storage.stored);
    }

    #[test]
    fn scoop_policy_builds_and_disseminates_indices() {
        let r = run_experiment(&small(StoragePolicy::Scoop, DataSourceKind::Gaussian)).unwrap();
        assert!(r.messages.summary > 0, "SCOOP sends summaries");
        assert!(
            r.indices_disseminated >= 1,
            "at least one storage index should be disseminated"
        );
        assert!(r.messages.mapping > 0, "mapping chunks must be sent");
        assert!(r.storage.storage_success() > 0.5);
    }

    #[test]
    fn unique_source_lets_scoop_store_mostly_at_producers() {
        let r = run_experiment(&small(StoragePolicy::Scoop, DataSourceKind::Unique)).unwrap();
        // After the first index is disseminated, every node owns its own
        // value, so data messages should be rare compared to samples.
        assert!(
            (r.messages.data as f64) < r.storage.sampled as f64 * 0.9,
            "UNIQUE should not ship most readings: {} data msgs for {} samples",
            r.messages.data,
            r.storage.sampled
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg = small(StoragePolicy::Scoop, DataSourceKind::Real);
        let a = run_experiment(&cfg).unwrap();
        let b = run_experiment(&cfg).unwrap();
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.storage, b.storage);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn trials_use_distinct_seeds_and_average() {
        let cfg = small(StoragePolicy::Base, DataSourceKind::Gaussian);
        let results = run_trials(&cfg, 2).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].config.seed + 1, results[1].config.seed);
        let avg = average_results(&results).unwrap();
        let lo = results.iter().map(|r| r.total_messages()).min().unwrap();
        let hi = results.iter().map(|r| r.total_messages()).max().unwrap();
        assert!(avg.total_messages() >= lo && avg.total_messages() <= hi);
        assert!(average_results(&[]).is_none());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = ExperimentConfig::small_test();
        cfg.num_nodes = 0;
        assert!(run_experiment(&cfg).is_err());
    }
}
