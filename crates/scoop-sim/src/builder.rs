//! Assembles a runnable engine from a [`ScenarioSpec`].
//!
//! [`SimBuilder`] is the single construction path for every experiment run:
//! the runner, the sweep grids, `scoop-lab`, and the bench harness all build
//! engines here. Each axis of the spec is realized by a pluggable factory —
//! [`TopologyGen`] for placement, [`LinkGen`] for loss — so alternative
//! generators slot in without touching the runner, and the fault axis is
//! resolved into a concrete radio-outage schedule. Everything stays `Send`
//! and deterministic in `spec.seed`, which is what lets the parallel sweep
//! runner spread builds across threads.

use crate::node::SimNode;
use scoop_net::{
    Engine, EngineConfig, FaultSchedule, LinkGen, LinkModel, StdLinkGen, StdTopologyGen, Topology,
    TopologyGen,
};
use scoop_types::{NodeId, ScenarioSpec, ScoopError, SimTime};
use scoop_workload::make_source_for;
use std::sync::Arc;

/// Salt keeping the fault-sampling random stream independent of the other
/// per-seed streams (topology jitter, link noise, engine loss).
const FAULT_SEED_SALT: u64 = 0x5eed_fa17;

/// Builds engines from scenario specs through pluggable axis factories.
pub struct SimBuilder {
    spec: ScenarioSpec,
    topology_gen: Box<dyn TopologyGen>,
    link_gen: Box<dyn LinkGen>,
}

impl SimBuilder {
    /// A builder over `spec` with the standard topology / link factories.
    pub fn new(spec: ScenarioSpec) -> Self {
        SimBuilder {
            spec,
            topology_gen: Box::new(StdTopologyGen),
            link_gen: Box::new(StdLinkGen),
        }
    }

    /// Replaces the placement factory.
    pub fn with_topology_gen(mut self, gen: impl TopologyGen + 'static) -> Self {
        self.topology_gen = Box::new(gen);
        self
    }

    /// Replaces the loss-model factory.
    pub fn with_link_gen(mut self, gen: impl LinkGen + 'static) -> Self {
        self.link_gen = Box::new(gen);
        self
    }

    /// Applies one string-keyed axis override (`"topology=grid"` style; see
    /// [`scoop_types::AXES`] for the vocabulary).
    pub fn set(mut self, key: &str, value: &str) -> Result<Self, ScoopError> {
        self.spec.set_axis(key, value)?;
        Ok(self)
    }

    /// The spec as currently configured.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Builds the topology, link model, fault schedule, node state machines,
    /// and engine for one run.
    ///
    /// Mass-churn joins enlarge the generated topology: the fresh nodes are
    /// placed up front by the same seeded generator (so their positions are
    /// deterministic) and kept dormant by the fault schedule until their
    /// churn event fires. A schedule without joins generates exactly
    /// `num_nodes` sensors, as before.
    pub fn build(&self) -> Result<Engine<SimNode>, ScoopError> {
        let spec = &self.spec;
        spec.validate()?;
        let sensors = spec.num_nodes + spec.faults.total_joins(spec.num_nodes);
        let topology = self
            .topology_gen
            .generate(&spec.topology, sensors, spec.seed)?;
        let links = self.link_gen.generate(&spec.link, &topology, spec.seed)?;
        assemble(spec, topology, links)
    }
}

/// Wires node state machines and the engine over an explicit topology and
/// link model (used by the builder, and directly by tests and
/// failure-injection experiments that perturb the network by hand). The
/// spec's fault axis is resolved and installed here, so hand-built engines
/// honor it too.
pub fn assemble(
    spec: &ScenarioSpec,
    topology: Topology,
    links: LinkModel,
) -> Result<Engine<SimNode>, ScoopError> {
    // The node-visible spec counts every sensor present in the topology,
    // including dormant churn joiners — node logic sizes its statistics
    // tables and flood fallbacks from it. Without joins this is exactly
    // `spec.num_nodes` and the clone is bit-identical to the input.
    let mut node_spec = spec.clone();
    node_spec.num_nodes = topology.len() - 1;
    let cfg = Arc::new(node_spec);
    // Every node owns its data source. Sources are pure in `(node, now)`
    // (the scoop-workload contract), so per-node copies agree exactly with a
    // single shared source — and the resulting engine is `Send`, which lets
    // the sweep runner spread runs over threads. Construct once, then take
    // cheap copies (bulky immutable state is Arc-shared inside the source).
    let proto_source = make_source_for(&spec.workload, cfg.num_nodes, spec.seed);
    let nodes: Vec<SimNode> = topology
        .nodes()
        .map(|id| SimNode::new(id, Arc::clone(&cfg), proto_source.clone_box()))
        .collect();
    let total = topology.len();
    let engine_cfg = EngineConfig {
        seed: spec.seed,
        num_shards: engine_shards_from_env(),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(topology, links, nodes, engine_cfg)?;
    let faults = resolve_fault_schedule(spec, total);
    if !faults.is_empty() {
        engine.set_fault_schedule(faults);
    }
    Ok(engine)
}

/// Region-shard count for the engine's event queue, from the
/// `SCOOP_ENGINE_SHARDS` environment variable (default 1). Like
/// `SCOOP_SWEEP_THREADS`, this is an execution knob, not part of the
/// experiment spec: any value yields byte-identical results (proven by the
/// `shard_determinism` integration test), so it never belongs in artifacts.
fn engine_shards_from_env() -> usize {
    std::env::var("SCOOP_ENGINE_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// A "permanent" end time for faults that never heal (churn kills). Half the
/// representable range so downstream arithmetic can never overflow.
const NEVER_HEALS: SimTime = SimTime::from_millis(u64::MAX / 2);

/// Draws `count` distinct ids from `pool` by a seeded partial Fisher–Yates;
/// the prefix of the (partially) shuffled pool is a uniform sample without
/// replacement. `stream` keeps different fault kinds and different windows
/// of the same kind on independent random streams.
fn seeded_sample(pool: &mut [u16], count: usize, seed: u64, stream: u64) -> Vec<u16> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let count = count.min(pool.len());
    if count == 0 {
        return Vec::new();
    }
    let mut rng =
        StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool[..count].to_vec()
}

/// Resolves the declarative fault axis into the engine's concrete schedule:
/// per-node radio outages, partition cuts, and CPU halts.
///
/// Outage/partition windows with explicit node lists apply verbatim
/// (basestation and out-of-range ids are ignored for outages); fraction
/// windows sample `round(fraction × sensors)` distinct sensors by a seeded
/// partial shuffle, so the same spec always picks the same nodes and
/// different windows are sampled independently. Sink outages and churn kills
/// halt the CPU *and* down the radio (crash semantics); churn joiners — the
/// topology slots past the spec's own sensor count — stay halted and silent
/// from time zero until their event fires.
pub fn resolve_fault_schedule(spec: &ScenarioSpec, total_nodes: usize) -> FaultSchedule {
    let mut schedule = FaultSchedule::empty();
    let sensors = total_nodes.saturating_sub(1);
    for (index, window) in spec.faults.windows.iter().enumerate() {
        let from = SimTime::ZERO + window.start;
        let until = SimTime::ZERO + window.end;
        if !window.nodes.is_empty() {
            for &id in &window.nodes {
                if id != 0 && (id as usize) < total_nodes {
                    schedule.add(NodeId(id), from, until);
                }
            }
            continue;
        }
        let count = (window.fraction * sensors as f64).round() as usize;
        let mut pool: Vec<u16> = (1..=sensors as u16).collect();
        for &id in &seeded_sample(&mut pool, count, spec.seed, index as u64) {
            schedule.add(NodeId(id), from, until);
        }
    }

    for (index, p) in spec.faults.partitions.iter().enumerate() {
        let from = SimTime::ZERO + p.start;
        let until = SimTime::ZERO + p.end;
        let isolated: Vec<u16> = if !p.nodes.is_empty() {
            p.nodes
                .iter()
                .copied()
                .filter(|&id| (id as usize) < total_nodes)
                .collect()
        } else {
            let count = (p.fraction * sensors as f64).round() as usize;
            let mut pool: Vec<u16> = (1..=sensors as u16).collect();
            seeded_sample(&mut pool, count, spec.seed, 0x1000 + index as u64)
        };
        let mut side = vec![false; total_nodes];
        for &id in &isolated {
            side[id as usize] = true;
        }
        schedule.add_partition(from, until, side);
    }

    for outage in &spec.faults.sink_outages {
        let from = SimTime::ZERO + outage.start;
        let until = SimTime::ZERO + outage.end;
        if (outage.sink.0 as usize) < total_nodes {
            schedule.add(outage.sink, from, until);
            schedule.add_halt(outage.sink, from, until);
        }
    }

    // Churn joiners occupy the topology slots past the spec's own sensors,
    // assigned to events in schedule order.
    let sinks = spec.policy.sink_ids();
    let mut next_join = spec.num_nodes as u16 + 1;
    for (index, churn) in spec.faults.churn.iter().enumerate() {
        let at = SimTime::ZERO + churn.at;
        // Kills: a seeded sample of the *original* live sensors; the sinks
        // survive (killing one is what `sink_outages` is for).
        let mut pool: Vec<u16> = (1..=spec.num_nodes as u16)
            .filter(|&id| !sinks.contains(&NodeId(id)))
            .collect();
        let count = (churn.kill_fraction * pool.len() as f64).round() as usize;
        for &id in &seeded_sample(&mut pool, count, spec.seed, 0x2000 + index as u64) {
            schedule.add(NodeId(id), at, NEVER_HEALS);
            schedule.add_halt(NodeId(id), at, NEVER_HEALS);
        }
        // Joins: dormant (halted + radio-down) from time zero until `at`,
        // when their deferred startup timers finally fire.
        for _ in 0..churn.join_count(spec.num_nodes) {
            if (next_join as usize) < total_nodes {
                schedule.add(NodeId(next_join), SimTime::ZERO, at);
                schedule.add_halt(NodeId(next_join), SimTime::ZERO, at);
                next_join += 1;
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::FaultWindow;

    fn spec_with_window(fraction: f64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::small_test();
        spec.faults
            .windows
            .push(FaultWindow::blackout(240, 420, fraction));
        spec
    }

    #[test]
    fn empty_fault_spec_resolves_to_empty_schedule() {
        let spec = ScenarioSpec::small_test();
        assert!(resolve_fault_schedule(&spec, 17).is_empty());
    }

    #[test]
    fn fraction_windows_sample_deterministically_and_spare_the_basestation() {
        let spec = spec_with_window(0.25);
        let a = resolve_fault_schedule(&spec, 17);
        let b = resolve_fault_schedule(&spec, 17);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4); // round(0.25 × 16)
        assert!(a.iter().all(|o| o.node != NodeId::BASESTATION));
        let mut nodes: Vec<_> = a.iter().map(|o| o.node).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "sampling must be without replacement");

        let mut other = spec;
        other.seed += 1;
        let c = resolve_fault_schedule(&other, 17);
        assert_ne!(a, c, "a different seed should kill different nodes");
    }

    #[test]
    fn explicit_node_lists_apply_verbatim_and_filter_invalid_ids() {
        let mut spec = ScenarioSpec::small_test();
        spec.faults.windows.push(FaultWindow {
            nodes: vec![0, 3, 99],
            ..FaultWindow::blackout(60, 120, 0.0)
        });
        let schedule = resolve_fault_schedule(&spec, 17);
        let nodes: Vec<_> = schedule.iter().map(|o| o.node).collect();
        assert_eq!(nodes, vec![NodeId(3)]);
    }

    #[test]
    fn builder_installs_the_resolved_schedule() {
        let engine = SimBuilder::new(spec_with_window(0.25)).build().unwrap();
        assert_eq!(engine.fault_schedule().len(), 4);
        let engine = SimBuilder::new(ScenarioSpec::small_test()).build().unwrap();
        assert!(engine.fault_schedule().is_empty());
    }

    #[test]
    fn partitions_resolve_to_cuts_with_seeded_or_explicit_sides() {
        use scoop_types::PartitionWindow;
        let mut spec = ScenarioSpec::small_test();
        spec.faults
            .partitions
            .push(PartitionWindow::seeded(240, 420, 0.5));
        spec.faults.partitions.push(PartitionWindow {
            start: scoop_types::SimDuration::from_secs(500),
            end: scoop_types::SimDuration::from_secs(600),
            fraction: 0.0,
            nodes: vec![3, 7],
        });
        let a = resolve_fault_schedule(&spec, 17);
        let b = resolve_fault_schedule(&spec, 17);
        assert_eq!(a, b, "seeded sides are deterministic");
        let cuts: Vec<_> = a.cuts().collect();
        assert_eq!(cuts.len(), 2);
        assert_eq!(
            cuts[0].side.iter().filter(|&&s| s).count(),
            8,
            "round(0.5 × 16) sensors isolated"
        );
        assert!(!cuts[0].side[0], "the basestation is never seed-sampled");
        let explicit: Vec<usize> = cuts[1]
            .side
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(explicit, vec![3, 7]);
        let t = SimTime::from_secs(550);
        assert!(a.is_cut(NodeId(3), NodeId(4), t));
        assert!(!a.is_cut(NodeId(3), NodeId(7), t));
    }

    #[test]
    fn sink_outages_halt_and_down_the_sink() {
        use scoop_types::SinkOutage;
        let mut spec = ScenarioSpec::small_test();
        spec.policy.basestations = vec![NodeId(0), NodeId(5)];
        spec.faults.sink_outages.push(SinkOutage::new(240, 420, 5));
        let s = resolve_fault_schedule(&spec, 17);
        let mid = SimTime::from_secs(300);
        assert!(s.is_down(NodeId(5), mid));
        assert_eq!(
            s.halted_until(NodeId(5), mid),
            Some(SimTime::from_secs(420))
        );
        assert!(!s.is_down(NodeId(5), SimTime::from_secs(420)));
        assert!(!s.is_down(NodeId(0), mid));
    }

    #[test]
    fn churn_kills_permanently_and_keeps_joiners_dormant() {
        use scoop_types::ChurnEvent;
        let mut spec = ScenarioSpec::small_test();
        spec.policy.basestations = vec![NodeId(0), NodeId(5)];
        spec.faults.churn.push(ChurnEvent::new(300, 0.5, 0.25));
        assert_eq!(spec.faults.total_joins(spec.num_nodes), 4);

        // Topology grows by the joins: 16 original sensors + 4 joiners + base.
        let engine = SimBuilder::new(spec.clone()).build().unwrap();
        assert_eq!(engine.topology().len(), 21);

        let s = resolve_fault_schedule(&spec, 21);
        let at = SimTime::from_secs(300);
        // Kills: round(0.5 × 15 non-sink sensors) = 8, never the sinks,
        // never healed.
        let killed: Vec<NodeId> = (1..=16).map(NodeId).filter(|&n| s.is_down(n, at)).collect();
        assert_eq!(killed.len(), 8);
        assert!(!killed.contains(&NodeId(5)), "sinks survive churn");
        for &n in &killed {
            assert!(
                s.is_down(n, SimTime::from_secs(100_000)),
                "kills are permanent"
            );
            assert!(s.halted_until(n, at).is_some(), "killed CPUs halt too");
        }
        // Joiners (ids 17..=20): dormant before the event, live after.
        for id in 17..=20 {
            let n = NodeId(id);
            assert!(s.is_down(n, SimTime::from_secs(299)));
            assert_eq!(s.halted_until(n, SimTime::ZERO), Some(at));
            assert!(!s.is_down(n, at));
            assert_eq!(s.halted_until(n, at), None);
        }
    }

    #[test]
    fn builder_set_applies_axis_overrides() {
        let builder = SimBuilder::new(ScenarioSpec::small_test())
            .set("topology", "grid")
            .unwrap()
            .set("nodes", "96")
            .unwrap()
            .set("link.loss_floor", "0.05")
            .unwrap();
        assert_eq!(builder.spec().num_nodes, 96);
        let engine = builder.build().unwrap();
        assert_eq!(engine.topology().len(), 97);
        assert_eq!(engine.topology().kind(), scoop_net::TopologyKind::Grid);
    }

    #[test]
    fn builder_rejects_unknown_axes_and_invalid_specs() {
        assert!(SimBuilder::new(ScenarioSpec::small_test())
            .set("warp", "9")
            .is_err());
        let mut spec = ScenarioSpec::small_test();
        spec.num_nodes = 0;
        assert!(SimBuilder::new(spec).build().is_err());
    }
}
