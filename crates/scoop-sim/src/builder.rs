//! Assembles a runnable engine from a [`ScenarioSpec`].
//!
//! [`SimBuilder`] is the single construction path for every experiment run:
//! the runner, the sweep grids, `scoop-lab`, and the bench harness all build
//! engines here. Each axis of the spec is realized by a pluggable factory —
//! [`TopologyGen`] for placement, [`LinkGen`] for loss — so alternative
//! generators slot in without touching the runner, and the fault axis is
//! resolved into a concrete radio-outage schedule. Everything stays `Send`
//! and deterministic in `spec.seed`, which is what lets the parallel sweep
//! runner spread builds across threads.

use crate::node::SimNode;
use scoop_net::{
    Engine, EngineConfig, FaultSchedule, LinkGen, LinkModel, StdLinkGen, StdTopologyGen, Topology,
    TopologyGen,
};
use scoop_types::{NodeId, ScenarioSpec, ScoopError, SimTime};
use scoop_workload::make_source_for;
use std::sync::Arc;

/// Salt keeping the fault-sampling random stream independent of the other
/// per-seed streams (topology jitter, link noise, engine loss).
const FAULT_SEED_SALT: u64 = 0x5eed_fa17;

/// Builds engines from scenario specs through pluggable axis factories.
pub struct SimBuilder {
    spec: ScenarioSpec,
    topology_gen: Box<dyn TopologyGen>,
    link_gen: Box<dyn LinkGen>,
}

impl SimBuilder {
    /// A builder over `spec` with the standard topology / link factories.
    pub fn new(spec: ScenarioSpec) -> Self {
        SimBuilder {
            spec,
            topology_gen: Box::new(StdTopologyGen),
            link_gen: Box::new(StdLinkGen),
        }
    }

    /// Replaces the placement factory.
    pub fn with_topology_gen(mut self, gen: impl TopologyGen + 'static) -> Self {
        self.topology_gen = Box::new(gen);
        self
    }

    /// Replaces the loss-model factory.
    pub fn with_link_gen(mut self, gen: impl LinkGen + 'static) -> Self {
        self.link_gen = Box::new(gen);
        self
    }

    /// Applies one string-keyed axis override (`"topology=grid"` style; see
    /// [`scoop_types::AXES`] for the vocabulary).
    pub fn set(mut self, key: &str, value: &str) -> Result<Self, ScoopError> {
        self.spec.set_axis(key, value)?;
        Ok(self)
    }

    /// The spec as currently configured.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Builds the topology, link model, fault schedule, node state machines,
    /// and engine for one run.
    pub fn build(&self) -> Result<Engine<SimNode>, ScoopError> {
        let spec = &self.spec;
        spec.validate()?;
        let topology = self
            .topology_gen
            .generate(&spec.topology, spec.num_nodes, spec.seed)?;
        let links = self.link_gen.generate(&spec.link, &topology, spec.seed)?;
        assemble(spec, topology, links)
    }
}

/// Wires node state machines and the engine over an explicit topology and
/// link model (used by the builder, and directly by tests and
/// failure-injection experiments that perturb the network by hand). The
/// spec's fault axis is resolved and installed here, so hand-built engines
/// honor it too.
pub fn assemble(
    spec: &ScenarioSpec,
    topology: Topology,
    links: LinkModel,
) -> Result<Engine<SimNode>, ScoopError> {
    let cfg = Arc::new(spec.clone());
    // Every node owns its data source. Sources are pure in `(node, now)`
    // (the scoop-workload contract), so per-node copies agree exactly with a
    // single shared source — and the resulting engine is `Send`, which lets
    // the sweep runner spread runs over threads. Construct once, then take
    // cheap copies (bulky immutable state is Arc-shared inside the source).
    let proto_source = make_source_for(&spec.workload, spec.num_nodes, spec.seed);
    let nodes: Vec<SimNode> = topology
        .nodes()
        .map(|id| SimNode::new(id, Arc::clone(&cfg), proto_source.clone_box()))
        .collect();
    let total = topology.len();
    let engine_cfg = EngineConfig {
        seed: spec.seed,
        num_shards: engine_shards_from_env(),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(topology, links, nodes, engine_cfg)?;
    let faults = resolve_fault_schedule(spec, total);
    if !faults.is_empty() {
        engine.set_fault_schedule(faults);
    }
    Ok(engine)
}

/// Region-shard count for the engine's event queue, from the
/// `SCOOP_ENGINE_SHARDS` environment variable (default 1). Like
/// `SCOOP_SWEEP_THREADS`, this is an execution knob, not part of the
/// experiment spec: any value yields byte-identical results (proven by the
/// `shard_determinism` integration test), so it never belongs in artifacts.
fn engine_shards_from_env() -> usize {
    std::env::var("SCOOP_ENGINE_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Resolves the declarative fault axis into concrete per-node outage windows.
///
/// Windows with explicit node lists apply verbatim (basestation and
/// out-of-range ids are ignored); fraction windows sample
/// `round(fraction × sensors)` distinct sensors by a seeded partial shuffle,
/// so the same spec always kills the same nodes and different windows are
/// sampled independently.
pub fn resolve_fault_schedule(spec: &ScenarioSpec, total_nodes: usize) -> FaultSchedule {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut schedule = FaultSchedule::empty();
    for (index, window) in spec.faults.windows.iter().enumerate() {
        let from = SimTime::ZERO + window.start;
        let until = SimTime::ZERO + window.end;
        if !window.nodes.is_empty() {
            for &id in &window.nodes {
                if id != 0 && (id as usize) < total_nodes {
                    schedule.add(NodeId(id), from, until);
                }
            }
            continue;
        }
        let sensors = total_nodes.saturating_sub(1);
        let count = ((window.fraction * sensors as f64).round() as usize).min(sensors);
        if count == 0 {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(
            spec.seed ^ FAULT_SEED_SALT ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        // Partial Fisher–Yates over the sensor ids: the first `count` slots
        // are a uniform sample without replacement.
        let mut ids: Vec<u16> = (1..=sensors as u16).collect();
        for i in 0..count {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        for &id in &ids[..count] {
            schedule.add(NodeId(id), from, until);
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::FaultWindow;

    fn spec_with_window(fraction: f64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::small_test();
        spec.faults
            .windows
            .push(FaultWindow::blackout(240, 420, fraction));
        spec
    }

    #[test]
    fn empty_fault_spec_resolves_to_empty_schedule() {
        let spec = ScenarioSpec::small_test();
        assert!(resolve_fault_schedule(&spec, 17).is_empty());
    }

    #[test]
    fn fraction_windows_sample_deterministically_and_spare_the_basestation() {
        let spec = spec_with_window(0.25);
        let a = resolve_fault_schedule(&spec, 17);
        let b = resolve_fault_schedule(&spec, 17);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4); // round(0.25 × 16)
        assert!(a.iter().all(|o| o.node != NodeId::BASESTATION));
        let mut nodes: Vec<_> = a.iter().map(|o| o.node).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "sampling must be without replacement");

        let mut other = spec;
        other.seed += 1;
        let c = resolve_fault_schedule(&other, 17);
        assert_ne!(a, c, "a different seed should kill different nodes");
    }

    #[test]
    fn explicit_node_lists_apply_verbatim_and_filter_invalid_ids() {
        let mut spec = ScenarioSpec::small_test();
        spec.faults.windows.push(FaultWindow {
            nodes: vec![0, 3, 99],
            ..FaultWindow::blackout(60, 120, 0.0)
        });
        let schedule = resolve_fault_schedule(&spec, 17);
        let nodes: Vec<_> = schedule.iter().map(|o| o.node).collect();
        assert_eq!(nodes, vec![NodeId(3)]);
    }

    #[test]
    fn builder_installs_the_resolved_schedule() {
        let engine = SimBuilder::new(spec_with_window(0.25)).build().unwrap();
        assert_eq!(engine.fault_schedule().len(), 4);
        let engine = SimBuilder::new(ScenarioSpec::small_test()).build().unwrap();
        assert!(engine.fault_schedule().is_empty());
    }

    #[test]
    fn builder_set_applies_axis_overrides() {
        let builder = SimBuilder::new(ScenarioSpec::small_test())
            .set("topology", "grid")
            .unwrap()
            .set("nodes", "96")
            .unwrap()
            .set("link.loss_floor", "0.05")
            .unwrap();
        assert_eq!(builder.spec().num_nodes, 96);
        let engine = builder.build().unwrap();
        assert_eq!(engine.topology().len(), 97);
        assert_eq!(engine.topology().kind(), scoop_net::TopologyKind::Grid);
    }

    #[test]
    fn builder_rejects_unknown_axes_and_invalid_specs() {
        assert!(SimBuilder::new(ScenarioSpec::small_test())
            .set("warp", "9")
            .is_err());
        let mut spec = ScenarioSpec::small_test();
        spec.num_nodes = 0;
        assert!(SimBuilder::new(spec).build().is_err());
    }
}
