//! Edge-case coverage for the fault axis: overlapping outage windows, an
//! outage open at t = 0, and a full-network blackout. In every case the
//! affected nodes must rejoin (timers keep firing through an outage, so a
//! closed window means live radios again) and the run must stay
//! deterministic — byte-identical across 1 vs 4 sweep threads, which is the
//! invariance this single-core container can actually prove.

use scoop_sim::{run_experiment, SweepRunner};
use scoop_types::{FaultWindow, ScenarioSpec};

/// The shared base: the small-test spec, whose 12 simulated minutes span a
/// 2-minute warmup and a 10-minute measured window.
fn base() -> ScenarioSpec {
    ScenarioSpec::small_test()
}

fn with_windows(windows: Vec<FaultWindow>) -> ScenarioSpec {
    let mut spec = base();
    spec.faults.windows = windows;
    spec.validate().expect("fault specs under test are valid");
    spec
}

/// An explicit-node window (the seeded-fraction form is exercised too, via
/// the full-network blackout below).
fn window_on_nodes(start: u64, end: u64, nodes: &[u16]) -> FaultWindow {
    let mut w = FaultWindow::blackout(start, end, 0.0);
    w.nodes = nodes.to_vec();
    w
}

#[test]
fn overlapping_windows_union_and_the_run_completes() {
    // Two overlapping seeded windows: 180–360 s and 300–480 s, each hitting
    // 30 % of the sensors (sampled independently, so some nodes sit in the
    // union's middle where both windows are open).
    let spec = with_windows(vec![
        FaultWindow::blackout(180, 360, 0.3),
        FaultWindow::blackout(300, 480, 0.3),
    ]);
    let faulty = run_experiment(&spec).expect("overlapping windows run");
    let clean = run_experiment(&base()).expect("fault-free run");
    assert!(faulty.total_messages() > 0);
    assert!(
        faulty.total_messages() < clean.total_messages(),
        "radio outages must suppress traffic ({} vs {})",
        faulty.total_messages(),
        clean.total_messages()
    );
    // The network is alive after the union closes: data still gets stored
    // and queries still return results over the whole measured window.
    assert!(faulty.storage.storage_success() > 0.0);
    assert!(faulty.queries.query_success() > 0.0);
}

#[test]
fn outage_open_at_t_zero_lets_nodes_rejoin() {
    // Nodes 2 and 3 are dark from the very first event until 240 s — through
    // the whole warmup and into the measured window — then rejoin.
    let spec = with_windows(vec![window_on_nodes(0, 240, &[2, 3])]);
    let result = run_experiment(&spec).expect("t=0 outage runs");
    for node in [2usize, 3] {
        assert!(
            result.per_node_tx[node] > 0,
            "node {node} never transmitted after its t=0 window closed"
        );
    }

    // The contrast case: a window open for the entire run is permanent
    // death — the node must transmit nothing at all.
    let forever = with_windows(vec![window_on_nodes(0, 20 * 60, &[2])]);
    let dead = run_experiment(&forever).expect("permanent outage runs");
    assert_eq!(
        dead.per_node_tx[2], 0,
        "a node whose window never closes must stay silent"
    );
    assert!(
        dead.per_node_tx[3] > 0,
        "unaffected nodes keep transmitting"
    );
}

#[test]
fn full_network_blackout_recovers() {
    // fraction = 1.0: every sensor (the basestation is never affected) goes
    // dark for two minutes in the middle of the measured window.
    let spec = with_windows(vec![FaultWindow::blackout(300, 420, 1.0)]);
    let result = run_experiment(&spec).expect("full blackout runs");
    let clean = run_experiment(&base()).expect("fault-free run");
    // Every sensor transmits at some point outside the blackout…
    for (node, &tx) in result.per_node_tx.iter().enumerate().skip(1) {
        assert!(tx > 0, "sensor {node} never rejoined after the blackout");
    }
    // …and the protocol keeps working end to end around the gap.
    assert!(result.storage.storage_success() > 0.0);
    assert!(result.queries.query_success() > 0.0);
    assert!(result.total_messages() < clean.total_messages());
}

#[test]
fn fault_runs_are_byte_identical_across_sweep_thread_counts() {
    // Every edge case above, twice over different seeds, through the sweep
    // runner at 1 vs 4 worker threads: the results must be exactly equal —
    // same messages, same per-node counters, same metrics — proving the
    // fault path keeps the run a pure function of its config.
    let mut configs = Vec::new();
    for seed in [1u64, 7] {
        for windows in [
            vec![
                FaultWindow::blackout(180, 360, 0.3),
                FaultWindow::blackout(300, 480, 0.3),
            ],
            vec![window_on_nodes(0, 240, &[2, 3])],
            vec![FaultWindow::blackout(300, 420, 1.0)],
        ] {
            let mut spec = with_windows(windows);
            spec.seed = seed;
            configs.push(spec);
        }
    }
    let sequential = SweepRunner::sequential()
        .run_configs(&configs)
        .expect("sequential sweep");
    let parallel = SweepRunner::with_threads(4)
        .run_configs(&configs)
        .expect("parallel sweep");
    assert_eq!(
        sequential, parallel,
        "fault-window runs diverged between 1 and 4 sweep threads"
    );
    // Same spec, same seed, rerun: still identical (no hidden global state).
    let again = SweepRunner::with_threads(4)
        .run_configs(&configs)
        .expect("parallel sweep rerun");
    assert_eq!(parallel, again);
}
