//! Integration tests for the parallel scenario runner's core guarantee:
//! a sweep executed on many threads is bit-identical to the same sweep
//! executed sequentially, for every policy and data source, and the
//! experiment modules built on top of it inherit that determinism.

use scoop_sim::sweep::{ScenarioSuite, SweepRunner};
use scoop_sim::RunResult;
use scoop_types::{DataSourceKind, ExperimentConfig, SimDuration, StoragePolicy};

fn small(policy: StoragePolicy, source: DataSourceKind, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.num_nodes = 10;
    cfg.duration = SimDuration::from_mins(8);
    cfg.warmup = SimDuration::from_mins(2);
    cfg.policy.scoop.summary_interval = SimDuration::from_secs(45);
    cfg.policy.scoop.remap_interval = SimDuration::from_secs(90);
    cfg.policy.kind = policy;
    cfg.workload.data_source = source;
    cfg.seed = seed;
    cfg
}

/// Every (policy, source) combination the evaluation uses, as one grid.
fn full_grid() -> Vec<ExperimentConfig> {
    let mut configs = Vec::new();
    let mut seed = 1;
    for policy in StoragePolicy::ALL {
        for source in DataSourceKind::ALL {
            configs.push(small(policy, source, seed));
            seed += 1;
        }
    }
    configs
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let configs = full_grid();
    let sequential = SweepRunner::sequential()
        .run_configs(&configs)
        .expect("sequential sweep");
    for threads in [2, 4, 8] {
        let parallel = SweepRunner::with_threads(threads)
            .run_configs(&configs)
            .expect("parallel sweep");
        assert_eq!(
            sequential, parallel,
            "{threads}-thread sweep diverged from the sequential baseline"
        );
    }
}

#[test]
fn suite_results_are_thread_count_invariant_with_trials() {
    let suite = ScenarioSuite::new("determinism", 3)
        .scenario(
            "scoop/real",
            small(StoragePolicy::Scoop, DataSourceKind::Real, 5),
        )
        .scenario(
            "local/gauss",
            small(StoragePolicy::Local, DataSourceKind::Gaussian, 6),
        )
        .scenario(
            "base/unique",
            small(StoragePolicy::Base, DataSourceKind::Unique, 7),
        );
    let baseline = SweepRunner::sequential().run(&suite).expect("sequential");
    let parallel = SweepRunner::with_threads(4).run(&suite).expect("parallel");
    assert_eq!(baseline.results.len(), parallel.results.len());
    for (a, b) in baseline.results.iter().zip(&parallel.results) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.trials, b.trials, "trials diverged for {}", a.label);
        assert_eq!(a.averaged, b.averaged, "average diverged for {}", a.label);
    }
}

#[test]
fn sweep_matches_direct_run_experiment_calls() {
    // The parallel path must agree with plain `run_experiment`, proving the
    // per-node owned sources behave exactly like the old shared source path.
    let configs = vec![
        small(StoragePolicy::Scoop, DataSourceKind::Real, 11),
        small(StoragePolicy::Hash, DataSourceKind::Random, 12),
    ];
    let direct: Vec<RunResult> = configs
        .iter()
        .map(|c| scoop_sim::run_experiment(c).expect("direct run"))
        .collect();
    let swept = SweepRunner::with_threads(4)
        .run_configs(&configs)
        .expect("sweep");
    assert_eq!(direct, swept);
}

#[test]
fn experiment_rows_are_thread_count_invariant() {
    // The figure modules read SCOOP_SWEEP_THREADS through SweepRunner::
    // from_env(); the rows they produce must not depend on it. Set the env
    // var explicitly on both sides of the comparison — this test must not
    // depend on the machine's core count. (Env mutation is process-global,
    // so run with --test-threads=1 if other env-sensitive tests join this
    // binary; today no other test here touches it.)
    let base = {
        let mut cfg = ExperimentConfig::small_test();
        cfg.num_nodes = 10;
        cfg.duration = SimDuration::from_mins(8);
        cfg.warmup = SimDuration::from_mins(2);
        cfg
    };
    let widths = [0.05, 0.5];
    let ops = [
        scoop_types::AggregateOp::Min,
        scoop_types::AggregateOp::Quantile(0.5),
    ];
    std::env::set_var("SCOOP_SWEEP_THREADS", "1");
    let rows_seq = scoop_sim::experiments::fig3_left(&base, 2).expect("fig3 sequential");
    let range_seq = scoop_sim::experiments::range_width(&base, &widths, 1).expect("range seq");
    let agg_seq = scoop_sim::experiments::aggregate_ops(&base, &ops, 1).expect("agg seq");
    std::env::set_var("SCOOP_SWEEP_THREADS", "4");
    let rows_par = scoop_sim::experiments::fig3_left(&base, 2).expect("fig3 parallel");
    let range_par = scoop_sim::experiments::range_width(&base, &widths, 1).expect("range par");
    let agg_par = scoop_sim::experiments::aggregate_ops(&base, &ops, 1).expect("agg par");
    std::env::remove_var("SCOOP_SWEEP_THREADS");
    assert_eq!(rows_seq.len(), rows_par.len());
    for (a, b) in rows_seq.iter().zip(&rows_par) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.source, b.source);
        assert_eq!(a.messages, b.messages, "{}/{}", a.policy, a.source);
        assert_eq!(a.total, b.total);
    }
    // The new workload kinds inherit the same invariance: range sweeps and
    // aggregate grids (q-digest merges included) don't depend on thread count.
    assert_eq!(range_seq.len(), range_par.len());
    for (a, b) in range_seq.iter().zip(&range_par) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.width_frac, b.width_frac);
        assert_eq!(
            a.total_messages, b.total_messages,
            "{}/width-{}",
            a.policy, a.width_frac
        );
        assert_eq!(a.fraction_nodes_queried, b.fraction_nodes_queried);
        assert_eq!(a.query_success, b.query_success);
    }
    assert_eq!(agg_seq.len(), agg_par.len());
    for (a, b) in agg_seq.iter().zip(&agg_par) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.op, b.op);
        assert_eq!(a.total_messages, b.total_messages, "{}/{}", a.policy, a.op);
        assert_eq!(a.query_reply_messages, b.query_reply_messages);
        assert_eq!(a.query_success, b.query_success);
    }
}
