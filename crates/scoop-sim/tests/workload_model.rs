//! Model tests for the range and aggregate workloads: every `TopologyKind` ×
//! storage policy runs the new workload kinds end to end, and the sink's
//! query records are checked against a god's-eye reference — the naive scan
//! evaluator from `scoop_workload::evaluate` applied to every node's data
//! buffer. LOCAL over perfect links is the exact case (the flood reaches
//! every producer and nothing is lost, so answers must equal the oracle);
//! SCOOP and HASH answer from owner buffers, so their answers must be
//! bounded by the oracle; BASE never issues network queries at all.

use scoop_sim::runner::build_engine;
use scoop_sim::SimNode;
use scoop_types::{
    AggregateOp, Reading, ScenarioSpec, SimDuration, SimTime, StoragePolicy, TopologyKind,
    WorkloadKind,
};
use scoop_workload::evaluate::ExactAggregate;

const EPSILON: f64 = 0.05;

/// The small-test spec reshaped for one (topology, policy, kind) cell, over
/// perfect links so reply loss can't blur the model comparison.
fn cell_spec(topology: TopologyKind, policy: StoragePolicy, kind: WorkloadKind) -> ScenarioSpec {
    let mut spec = ScenarioSpec::small_test();
    spec.topology.kind = topology;
    spec.policy.kind = policy;
    spec.workload.kind = kind;
    spec.link = scoop_types::LinkSpec::perfect();
    spec.seed = 7;
    spec.validate().expect("model-test specs are valid");
    spec
}

/// Runs the spec to completion and returns the finished engine for
/// god's-eye inspection.
fn run(spec: &ScenarioSpec) -> scoop_net::Engine<SimNode> {
    let mut engine = build_engine(spec).expect("engine builds");
    engine.run_until(SimTime::ZERO + spec.duration);
    engine
}

/// Every reading stored anywhere in the network at the end of the run — the
/// oracle's view. Owner-routed policies may hold a reading at one node only;
/// the scan answers "what could any query have seen".
fn gods_eye(engine: &scoop_net::Engine<SimNode>) -> (Vec<Reading>, u64) {
    let mut all = Vec::new();
    let mut overwrites = 0;
    for (_, node) in engine.iter_nodes() {
        all.extend(node.data_buffer().iter().map(|s| s.reading));
        overwrites += node.data_buffer().total_overwrites();
    }
    (all, overwrites)
}

/// Records whose reply window closed comfortably before the run ended: the
/// query flood, buffer scans, and (for aggregates) the depth-scaled hold
/// timers all complete within seconds, so a minute of slack is generous.
fn settled(
    engine: &scoop_net::Engine<SimNode>,
    spec: &ScenarioSpec,
) -> Vec<scoop_sim::node::QueryRecord> {
    let cutoff =
        SimTime::from_millis(spec.duration.as_millis() - SimDuration::from_secs(60).as_millis());
    let mut records = Vec::new();
    for (_, node) in engine.iter_nodes() {
        records.extend(
            node.query_records()
                .into_iter()
                .filter(|r| r.time_hi <= cutoff),
        );
    }
    records
}

/// Settled records issued after the routing tree had time to form. Queries
/// issued right after warmup can miss the deepest nodes (a 16-node line
/// takes a few heartbeat rounds to join end to end), so the exact-equality
/// claims only apply once the tree is stable.
fn stabilized(
    engine: &scoop_net::Engine<SimNode>,
    spec: &ScenarioSpec,
) -> Vec<scoop_sim::node::QueryRecord> {
    let floor =
        SimTime::from_millis(spec.warmup.as_millis() + SimDuration::from_secs(150).as_millis());
    settled(engine, spec)
        .into_iter()
        .filter(|r| r.time_hi >= floor)
        .collect()
}

#[test]
fn local_range_answers_equal_the_naive_scan_on_every_topology() {
    for topology in TopologyKind::ALL {
        let spec = cell_spec(topology, StoragePolicy::Local, WorkloadKind::range(0.25));
        let engine = run(&spec);
        let (readings, overwrites) = gods_eye(&engine);
        assert_eq!(
            overwrites, 0,
            "{topology:?}: oracle requires intact buffers"
        );
        let records = stabilized(&engine, &spec);
        assert!(!records.is_empty(), "{topology:?}: queries settled");
        for r in &records {
            assert_eq!(
                r.replies, r.targets,
                "{topology:?}: perfect links, full flood"
            );
            let oracle = scoop_workload::evaluate::scan(&readings, &r.values, r.time_lo, r.time_hi);
            assert_eq!(
                r.readings,
                oracle.len() as u64,
                "{topology:?} query {}: LOCAL must return exactly the matching readings",
                r.query_id
            );
        }
    }
}

#[test]
fn local_aggregates_equal_the_exact_evaluator_on_every_topology() {
    for topology in TopologyKind::ALL {
        let spec = cell_spec(
            topology,
            StoragePolicy::Local,
            WorkloadKind::aggregate(AggregateOp::Quantile(0.5), EPSILON),
        );
        let engine = run(&spec);
        let (readings, overwrites) = gods_eye(&engine);
        assert_eq!(overwrites, 0);
        let records = stabilized(&engine, &spec);
        assert!(
            !records.is_empty(),
            "{topology:?}: aggregate queries settled"
        );
        for r in &records {
            let exact = ExactAggregate::over(
                scoop_workload::evaluate::scan(&readings, &r.values, r.time_lo, r.time_hi)
                    .iter()
                    .map(|m| m.value),
            );
            let partial = r
                .aggregate
                .as_ref()
                .unwrap_or_else(|| panic!("{topology:?}: aggregate records carry a partial"));
            assert_eq!(
                partial.count, exact.count,
                "{topology:?} query {}",
                r.query_id
            );
            assert_eq!(partial.sum, exact.sum);
            assert_eq!(r.readings, exact.count, "readings counter tracks the fold");
            if exact.count > 0 {
                assert_eq!(Some(partial.min), exact.min);
                assert_eq!(Some(partial.max), exact.max);
                let got = partial
                    .answer(AggregateOp::Quantile(0.5))
                    .map(|v| v as scoop_types::Value);
                assert!(
                    exact.quantile_within(0.5, EPSILON, got),
                    "{topology:?} query {}: median {:?} outside epsilon of the exact reference",
                    r.query_id,
                    got
                );
            }
        }
    }
}

#[test]
fn owner_routed_answers_are_bounded_by_the_oracle_on_every_topology() {
    // SCOOP and HASH answer from owner buffers: a subset of what the oracle
    // sees, never an invention. The bound assertions hold on every topology.
    for topology in TopologyKind::ALL {
        for policy in [StoragePolicy::Scoop, StoragePolicy::Hash] {
            for kind in [
                WorkloadKind::range(0.25),
                WorkloadKind::aggregate(AggregateOp::Quantile(0.5), EPSILON),
            ] {
                let spec = cell_spec(topology, policy, kind);
                let engine = run(&spec);
                let (readings, _) = gods_eye(&engine);
                let records = settled(&engine, &spec);
                let mut answered = 0u64;
                for r in &records {
                    let exact = ExactAggregate::over(
                        scoop_workload::evaluate::scan(&readings, &r.values, r.time_lo, r.time_hi)
                            .iter()
                            .map(|m| m.value),
                    );
                    assert!(
                        r.readings <= exact.count,
                        "{topology:?}/{policy:?} query {}: answered {} readings, oracle holds {}",
                        r.query_id,
                        r.readings,
                        exact.count
                    );
                    answered += r.readings;
                    if let Some(partial) = r.aggregate.as_ref() {
                        assert_eq!(partial.count, r.readings, "fold counts its readings");
                        if partial.count > 0 {
                            let exact_min = exact.min.expect("oracle covers the answer");
                            let exact_max = exact.max.expect("oracle covers the answer");
                            assert!(partial.min >= exact_min && partial.max <= exact_max);
                            let got = partial
                                .answer(AggregateOp::Quantile(0.5))
                                .expect("non-empty partial answers");
                            assert!(
                                (partial.min as f64) <= got && got <= (partial.max as f64),
                                "median inside the observed extremes"
                            );
                        }
                    } else {
                        assert!(
                            !matches!(kind, WorkloadKind::Aggregate(_)),
                            "aggregate records must carry partials"
                        );
                    }
                }
                assert!(
                    answered > 0,
                    "{topology:?}/{policy:?}/{kind:?}: something was answered"
                );
            }
        }
    }
}

#[test]
fn base_policy_answers_everything_locally_on_every_topology() {
    for topology in TopologyKind::ALL {
        for kind in [
            WorkloadKind::range(0.25),
            WorkloadKind::aggregate(AggregateOp::Avg, EPSILON),
        ] {
            let spec = cell_spec(topology, StoragePolicy::Base, kind);
            let engine = run(&spec);
            let n = engine.topology().len();
            let mut query_traffic = 0u64;
            let mut data_traffic = 0u64;
            for i in 0..n {
                let tx = engine.stats().node(scoop_types::NodeId(i as u16)).tx;
                query_traffic += tx.query + tx.reply + tx.aggregate;
                data_traffic += tx.data;
            }
            for (_, node) in engine.iter_nodes() {
                assert!(
                    node.query_records().is_empty(),
                    "{topology:?}: BASE never issues network queries"
                );
            }
            assert_eq!(
                query_traffic, 0,
                "{topology:?}/{kind:?}: BASE answers at the sink for free"
            );
            assert!(
                data_traffic > 0,
                "{topology:?}/{kind:?}: BASE ships every reading to the sink"
            );
        }
    }
}
