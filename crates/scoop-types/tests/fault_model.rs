//! Property-based hardening of the adversarial fault model's spec surface:
//! every invalid schedule — inverted windows, fractions outside [0, 1],
//! duplicate node sets, outages on nodes that are not sinks — must be
//! rejected as a typed `InvalidConfig` before a single event runs, and
//! every well-formed schedule must validate cleanly.

use proptest::prelude::*;
use scoop_types::{
    ChurnEvent, FaultSpec, FaultWindow, PartitionWindow, ScenarioSpec, ScoopError, SimDuration,
    SinkOutage,
};

/// Values that are never a valid fraction: the non-finite poisons plus
/// finite magnitudes strictly outside [0, 1] on either side.
fn bad_fraction() -> impl Strategy<Value = f64> {
    (0u8..4, 1.0001f64..1e9).prop_map(|(kind, magnitude)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => {
            if (magnitude as u64).is_multiple_of(2) {
                magnitude
            } else {
                -magnitude
            }
        }
    })
}

fn assert_invalid(spec: &FaultSpec) {
    match spec.validate() {
        Err(ScoopError::InvalidConfig(_)) => {}
        other => panic!("{spec:?} must be InvalidConfig, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any combination of well-formed windows, partitions, sink outages on
    /// real sinks, and churn events validates — including overlapping and
    /// nested windows, which are legal and union at the schedule layer.
    #[test]
    fn well_formed_schedules_validate(
        windows in proptest::collection::vec((0u64..500, 1u64..500, 0.0f64..=1.0), 1..4),
        partitions in proptest::collection::vec((0u64..500, 1u64..500, 0.0f64..=1.0), 1..4),
        outages in proptest::collection::vec((0u64..500, 1u64..500), 1..3),
        churn in proptest::collection::vec((0u64..500, 0.0f64..=1.0, 0.0f64..=0.5), 1..3),
    ) {
        let spec = FaultSpec {
            windows: windows
                .iter()
                .map(|&(s, len, f)| FaultWindow::blackout(s, s + len, f))
                .collect(),
            partitions: partitions
                .iter()
                .map(|&(s, len, f)| PartitionWindow::seeded(s, s + len, f))
                .collect(),
            sink_outages: outages
                .iter()
                .map(|&(s, len)| SinkOutage::new(s, s + len, 0))
                .collect(),
            churn: churn
                .iter()
                .map(|&(at, kill, join)| ChurnEvent::new(at, kill, join))
                .collect(),
        };
        prop_assert!(spec.validate().is_ok(), "{:?}", spec.validate());

        // And it composes into a full scenario: the sink outages all target
        // node 0, the classic single sink.
        let mut scenario = ScenarioSpec::small_test();
        scenario.faults = spec;
        prop_assert!(scenario.validate().is_ok(), "{:?}", scenario.validate());
    }

    /// A fraction outside [0, 1] — anywhere a fraction appears — is a typed
    /// `InvalidConfig`, never a panic and never a silently clamped value.
    #[test]
    fn out_of_range_fractions_are_rejected(bad in bad_fraction()) {
        assert_invalid(&FaultSpec {
            windows: vec![FaultWindow::blackout(0, 10, bad)],
            ..FaultSpec::none()
        });
        assert_invalid(&FaultSpec {
            partitions: vec![PartitionWindow::seeded(0, 10, bad)],
            ..FaultSpec::none()
        });
        assert_invalid(&FaultSpec {
            churn: vec![ChurnEvent::new(10, bad, 0.1)],
            ..FaultSpec::none()
        });
        assert_invalid(&FaultSpec {
            churn: vec![ChurnEvent::new(10, 0.1, bad)],
            ..FaultSpec::none()
        });
    }

    /// Inverted and empty windows are rejected for every windowed kind.
    #[test]
    fn inverted_windows_are_rejected(start in 0u64..1000, shrink in 0u64..100) {
        let end = start.saturating_sub(shrink);
        assert_invalid(&FaultSpec {
            windows: vec![FaultWindow::blackout(start, end, 0.5)],
            ..FaultSpec::none()
        });
        assert_invalid(&FaultSpec {
            partitions: vec![PartitionWindow::seeded(start, end, 0.5)],
            ..FaultSpec::none()
        });
        assert_invalid(&FaultSpec {
            sink_outages: vec![SinkOutage::new(start, end, 0)],
            ..FaultSpec::none()
        });
    }

    /// A partition's explicit node set must not contain duplicates.
    #[test]
    fn duplicate_partition_node_sets_are_rejected(
        base in proptest::collection::vec(1u16..200, 1..8),
        dup_index in 0usize..64,
    ) {
        let mut nodes = base;
        let dup = nodes[dup_index % nodes.len()];
        nodes.push(dup);
        let spec = FaultSpec {
            partitions: vec![PartitionWindow {
                start: SimDuration::from_secs(10),
                end: SimDuration::from_secs(20),
                fraction: 0.0,
                nodes,
            }],
            ..FaultSpec::none()
        };
        assert_invalid(&spec);
    }

    /// A sink outage may only target a configured basestation: in the
    /// classic single-sink scenario every non-zero target is rejected by
    /// `ScenarioSpec::validate`, with a typed error naming the node.
    #[test]
    fn sink_outages_on_non_sinks_are_rejected(sink in 1u16..500) {
        let mut scenario = ScenarioSpec::small_test();
        scenario.faults.sink_outages = vec![SinkOutage::new(100, 200, sink)];
        match scenario.validate() {
            Err(ScoopError::InvalidConfig(msg)) => {
                prop_assert!(msg.contains("not a basestation"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}

/// The multi-sink role list has its own gate: duplicates, a missing root,
/// and ids beyond the sensor range are all typed `InvalidConfig`.
#[test]
fn adversarial_basestation_lists_get_typed_errors() {
    let reject = |setup: fn(&mut ScenarioSpec)| {
        let mut scenario = ScenarioSpec::small_test();
        setup(&mut scenario);
        match scenario.validate() {
            Err(ScoopError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    };
    reject(|s| s.policy.basestations = vec![scoop_types::NodeId(0), scoop_types::NodeId(0)]);
    reject(|s| s.policy.basestations = vec![scoop_types::NodeId(5)]);
    reject(|s| {
        s.policy.basestations = vec![scoop_types::NodeId(0), scoop_types::NodeId(999)];
    });

    // The well-formed counterpart is accepted.
    let mut scenario = ScenarioSpec::small_test();
    scenario.policy.basestations = vec![scoop_types::NodeId(0), scoop_types::NodeId(8)];
    scenario
        .validate()
        .expect("a real 2-sink federation validates");
}
