//! Property-based model test for the heap-backed [`NodeBitmap`].
//!
//! The reference model is a `BTreeSet<u16>`: any interleaving of inserts and
//! removes over node ids up to the full `MAX_NODES` range must leave the
//! bitmap agreeing with the set on membership, length, iteration order, and
//! equality/serde round-trips. This is the contract the query path relies on
//! now that the bitmap's storage grows with the highest selected id instead
//! of being a fixed `MAX_NODES`-bit array.

use proptest::prelude::*;
use scoop_types::{NodeBitmap, NodeId, MAX_NODES};
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/remove interleavings agree with the `BTreeSet` model.
    #[test]
    fn bitmap_matches_btreeset_model(
        // Bias the universe so small, mid, and full-range bitmaps all occur;
        // `span` caps the ids one run draws from (2..=MAX_NODES).
        span_exp in 1u32..16,
        ops in proptest::collection::vec((0u32..MAX_NODES as u32, 0u8..2), 1..200),
    ) {
        let span = (1usize << span_exp).min(MAX_NODES);
        let mut bitmap = NodeBitmap::empty();
        let mut model: BTreeSet<u16> = BTreeSet::new();
        for &(raw, op) in &ops {
            let id = (raw as usize % span) as u16;
            if op == 1 {
                bitmap.insert(NodeId(id));
                model.insert(id);
            } else {
                bitmap.remove(NodeId(id));
                model.remove(&id);
            }
        }
        prop_assert_eq!(bitmap.len(), model.len());
        prop_assert_eq!(bitmap.is_empty(), model.is_empty());
        for &id in &model {
            prop_assert!(bitmap.contains(NodeId(id)));
        }
        // Iteration yields exactly the model's ids, ascending.
        let iterated: Vec<u16> = bitmap.iter().map(|n| n.0).collect();
        let expected: Vec<u16> = model.iter().copied().collect();
        prop_assert_eq!(iterated, expected);
    }

    /// `from_nodes` equals element-wise insertion, and two bitmaps with the
    /// same members are equal regardless of construction history (the
    /// no-trailing-zero-words invariant).
    #[test]
    fn from_nodes_and_equality_are_history_independent(
        ids in proptest::collection::vec(0u32..MAX_NODES as u32, 0..64),
        scratch in proptest::collection::vec(0u32..MAX_NODES as u32, 0..32),
    ) {
        let built = NodeBitmap::from_nodes(ids.iter().map(|&i| NodeId(i as u16)));
        let mut inserted = NodeBitmap::empty();
        for &i in &ids {
            inserted.insert(NodeId(i as u16));
        }
        prop_assert_eq!(&built, &inserted);

        // Insert-then-remove churn on ids outside the final membership must
        // not perturb equality (trailing words shrink back).
        let mut churned = built.clone();
        for &i in &scratch {
            let id = NodeId(i as u16);
            if !built.contains(id) {
                churned.insert(id);
                churned.remove(id);
            }
        }
        prop_assert_eq!(&churned, &built);
    }

    /// Serde round-trips preserve membership, and the wire form is readable
    /// whether or not it carries the fixed-array era's trailing zero words.
    #[test]
    fn serde_round_trips_and_reads_padded_words(
        ids in proptest::collection::vec(0u32..MAX_NODES as u32, 0..48),
        padding in 0usize..4,
    ) {
        let bitmap = NodeBitmap::from_nodes(ids.iter().map(|&i| NodeId(i as u16)));
        let json = serde_json::to_string(&bitmap).unwrap();
        let back: NodeBitmap = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &bitmap);

        // Splice trailing zero words into the serialized form — the layout
        // every pre-heap bitmap (fixed `[u64; MAX_NODES/64]`) used — and
        // check the deserializer trims them to the canonical representation.
        let padded = if padding == 0 {
            json.clone()
        } else {
            let zeros = vec!["0"; padding].join(",");
            if json.contains("[]") {
                json.replace("[]", &format!("[{zeros}]"))
            } else {
                json.replace(']', &format!(",{zeros}]"))
            }
        };
        let from_padded: NodeBitmap = serde_json::from_str(&padded).unwrap();
        prop_assert_eq!(&from_padded, &bitmap);
        prop_assert_eq!(serde_json::to_string(&from_padded).unwrap(), json);
    }
}
