//! Classification of radio messages and per-kind transmission accounting.
//!
//! The paper's cost metric is "the total number of messages the nodes
//! collectively send" (Section 6), broken down in Figure 3 into data,
//! summary, mapping, and query/reply messages. Tree-maintenance heartbeats
//! are sent during the 10-minute stabilization prefix in every policy and are
//! tracked separately so they can be excluded from the comparison, exactly as
//! the paper does.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The kind of an application-level message, used for cost accounting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MessageKind {
    /// A sensor reading (or batch of readings) being routed to its owner
    /// node, or to the basestation under the BASE policy.
    Data,
    /// A periodic statistics summary (histogram + topology info) sent up the
    /// routing tree to the basestation. Scoop only.
    Summary,
    /// A chunk of a storage index disseminated by the basestation. Scoop only.
    Mapping,
    /// A query disseminated from the basestation.
    Query,
    /// A query reply routed back to the basestation.
    Reply,
    /// A partial aggregate travelling up the aggregation tree (aggregate
    /// workloads only). Counted with query/reply in the cost breakdown.
    Aggregate,
    /// Routing-tree maintenance traffic (tree-join beacons / heartbeats).
    /// Present in every policy; excluded from the paper's cost breakdown.
    Heartbeat,
}

impl MessageKind {
    /// All message kinds, in the order used by reports.
    pub const ALL: [MessageKind; 7] = [
        MessageKind::Data,
        MessageKind::Summary,
        MessageKind::Mapping,
        MessageKind::Query,
        MessageKind::Reply,
        MessageKind::Aggregate,
        MessageKind::Heartbeat,
    ];

    /// Whether transmissions of this kind count towards the paper's cost
    /// metric (Figure 3 counts data, summary, mapping, and query/reply).
    pub fn counts_toward_cost(self) -> bool {
        !matches!(self, MessageKind::Heartbeat)
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::Data => "data",
            MessageKind::Summary => "summary",
            MessageKind::Mapping => "mapping",
            MessageKind::Query => "query",
            MessageKind::Reply => "reply",
            MessageKind::Aggregate => "aggregate",
            MessageKind::Heartbeat => "heartbeat",
        }
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-kind transmission counters.
///
/// One `MessageStats` is kept per node by the simulator and summed across the
/// network to produce the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Serialize, Deserialize)]
pub struct MessageStats {
    /// Data messages sent.
    pub data: u64,
    /// Summary messages sent.
    pub summary: u64,
    /// Mapping messages sent.
    pub mapping: u64,
    /// Query messages sent.
    pub query: u64,
    /// Reply messages sent.
    pub reply: u64,
    /// Partial-aggregate messages sent (aggregate workloads only; zero — and
    /// absent from the serialized form — everywhere else, so pre-aggregate
    /// artifacts keep their byte-identical shape).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub aggregate: u64,
    /// Heartbeat / tree-maintenance messages sent.
    pub heartbeat: u64,
}

fn is_zero(n: &u64) -> bool {
    *n == 0
}

impl MessageStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transmission of the given kind.
    pub fn record(&mut self, kind: MessageKind) {
        self.record_n(kind, 1);
    }

    /// Records `n` transmissions of the given kind.
    pub fn record_n(&mut self, kind: MessageKind, n: u64) {
        *self.slot_mut(kind) += n;
    }

    /// The counter for a given kind.
    pub fn get(&self, kind: MessageKind) -> u64 {
        match kind {
            MessageKind::Data => self.data,
            MessageKind::Summary => self.summary,
            MessageKind::Mapping => self.mapping,
            MessageKind::Query => self.query,
            MessageKind::Reply => self.reply,
            MessageKind::Aggregate => self.aggregate,
            MessageKind::Heartbeat => self.heartbeat,
        }
    }

    fn slot_mut(&mut self, kind: MessageKind) -> &mut u64 {
        match kind {
            MessageKind::Data => &mut self.data,
            MessageKind::Summary => &mut self.summary,
            MessageKind::Mapping => &mut self.mapping,
            MessageKind::Query => &mut self.query,
            MessageKind::Reply => &mut self.reply,
            MessageKind::Aggregate => &mut self.aggregate,
            MessageKind::Heartbeat => &mut self.heartbeat,
        }
    }

    /// Total transmissions that count towards the paper's cost metric
    /// (everything except heartbeats).
    pub fn cost(&self) -> u64 {
        self.data + self.summary + self.mapping + self.query + self.reply + self.aggregate
    }

    /// Query plus reply messages (including partial aggregates), reported as
    /// a single series in Figure 3.
    pub fn query_reply(&self) -> u64 {
        self.query + self.reply + self.aggregate
    }

    /// Total transmissions of every kind, including heartbeats.
    pub fn total(&self) -> u64 {
        self.cost() + self.heartbeat
    }
}

impl Add for MessageStats {
    type Output = MessageStats;
    fn add(self, rhs: MessageStats) -> MessageStats {
        MessageStats {
            data: self.data + rhs.data,
            summary: self.summary + rhs.summary,
            mapping: self.mapping + rhs.mapping,
            query: self.query + rhs.query,
            reply: self.reply + rhs.reply,
            aggregate: self.aggregate + rhs.aggregate,
            heartbeat: self.heartbeat + rhs.heartbeat,
        }
    }
}

impl AddAssign for MessageStats {
    fn add_assign(&mut self, rhs: MessageStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for MessageStats {
    fn sum<I: Iterator<Item = MessageStats>>(iter: I) -> MessageStats {
        iter.fold(MessageStats::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_do_not_count_toward_cost() {
        assert!(MessageKind::Data.counts_toward_cost());
        assert!(MessageKind::Summary.counts_toward_cost());
        assert!(MessageKind::Mapping.counts_toward_cost());
        assert!(MessageKind::Query.counts_toward_cost());
        assert!(MessageKind::Reply.counts_toward_cost());
        assert!(MessageKind::Aggregate.counts_toward_cost());
        assert!(!MessageKind::Heartbeat.counts_toward_cost());
    }

    #[test]
    fn aggregates_count_with_query_reply_and_hide_when_zero() {
        let mut s = MessageStats::new();
        s.record(MessageKind::Query);
        s.record_n(MessageKind::Aggregate, 3);
        assert_eq!(s.get(MessageKind::Aggregate), 3);
        assert_eq!(s.query_reply(), 4);
        assert_eq!(s.cost(), 4);
        // Zero aggregates serialize to the pre-aggregate shape.
        let legacy = serde_json::to_string(&MessageStats::new()).unwrap();
        assert!(!legacy.contains("aggregate"), "{legacy}");
        let with = serde_json::to_string(&s).unwrap();
        assert!(with.contains("\"aggregate\":3"), "{with}");
        let back: MessageStats = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, MessageStats::new());
    }

    #[test]
    fn record_and_totals() {
        let mut s = MessageStats::new();
        s.record(MessageKind::Data);
        s.record_n(MessageKind::Data, 2);
        s.record(MessageKind::Query);
        s.record(MessageKind::Reply);
        s.record_n(MessageKind::Heartbeat, 10);
        assert_eq!(s.get(MessageKind::Data), 3);
        assert_eq!(s.query_reply(), 2);
        assert_eq!(s.cost(), 5);
        assert_eq!(s.total(), 15);
    }

    #[test]
    fn addition_and_sum() {
        let mut a = MessageStats::new();
        a.record_n(MessageKind::Summary, 4);
        let mut b = MessageStats::new();
        b.record_n(MessageKind::Summary, 6);
        b.record(MessageKind::Mapping);
        let c = a + b;
        assert_eq!(c.summary, 10);
        assert_eq!(c.mapping, 1);
        let total: MessageStats = vec![a, b].into_iter().sum();
        assert_eq!(total, c);
        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            MessageKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), MessageKind::ALL.len());
    }
}
