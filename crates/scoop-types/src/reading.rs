//! A single sensor reading.

use crate::{Attribute, NodeId, SimTime, Value};
use serde::{Deserialize, Serialize};

/// One sampled sensor reading.
///
/// Readings are produced by the workload data sources, buffered in the
/// producer's recent-readings ring, routed to their owner according to the
/// storage index, and finally stored in the owner's circular data buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Reading {
    /// The node that sampled the reading.
    pub producer: NodeId,
    /// Which attribute was sampled.
    pub attribute: Attribute,
    /// The sampled value.
    pub value: Value,
    /// When the reading was sampled.
    pub timestamp: SimTime,
}

impl Reading {
    /// Convenience constructor.
    pub fn new(producer: NodeId, attribute: Attribute, value: Value, timestamp: SimTime) -> Self {
        Reading {
            producer,
            attribute,
            value,
            timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = Reading::new(NodeId(3), Attribute::Light, 42, SimTime::from_secs(10));
        assert_eq!(r.producer, NodeId(3));
        assert_eq!(r.value, 42);
        assert_eq!(r.timestamp.as_secs(), 10);
    }

    #[test]
    fn serde_roundtrip() {
        let r = Reading::new(NodeId(5), Attribute::Temperature, -3, SimTime::from_secs(1));
        let json = serde_json::to_string(&r).unwrap();
        let back: Reading = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
