//! Error type shared across the workspace.

use crate::NodeId;
use std::fmt;

/// Errors surfaced by the Scoop library crates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScoopError {
    /// A node id referenced a node that does not exist in the topology.
    UnknownNode(NodeId),
    /// The requested node count exceeds the addressing limit
    /// ([`crate::MAX_NODES`], imposed by the query bitmap).
    TooManyNodes {
        /// Number of nodes that was requested.
        requested: usize,
        /// Maximum number of addressable nodes.
        limit: usize,
    },
    /// An experiment configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A storage index or message referenced a value outside the attribute's
    /// configured domain.
    ValueOutOfDomain {
        /// The offending value.
        value: i32,
        /// The lower bound of the domain.
        lo: i32,
        /// The upper bound of the domain.
        hi: i32,
    },
    /// The simulation engine was asked to do something inconsistent with its
    /// current state (e.g. delivering to a node that was never registered).
    Simulation(String),
    /// Experiment rows or artifacts could not be serialized / deserialized.
    Serialization(String),
    /// An experiment artifact could not be read from or written to disk.
    Artifact(String),
    /// The durable basestation store hit an I/O failure, detected corruption,
    /// or was handed records it cannot accept (e.g. out of time order).
    Store(String),
}

impl fmt::Display for ScoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoopError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ScoopError::TooManyNodes { requested, limit } => {
                write!(f, "requested {requested} nodes but the limit is {limit}")
            }
            ScoopError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ScoopError::ValueOutOfDomain { value, lo, hi } => {
                write!(f, "value {value} outside the attribute domain [{lo}, {hi}]")
            }
            ScoopError::Simulation(msg) => write!(f, "simulation error: {msg}"),
            ScoopError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            ScoopError::Artifact(msg) => write!(f, "artifact error: {msg}"),
            ScoopError::Store(msg) => write!(f, "store error: {msg}"),
        }
    }
}

impl std::error::Error for ScoopError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ScoopError::UnknownNode(NodeId(9)).to_string(),
            "unknown node n9"
        );
        assert!(ScoopError::TooManyNodes {
            requested: 200,
            limit: 128
        }
        .to_string()
        .contains("200"));
        assert!(ScoopError::ValueOutOfDomain {
            value: 500,
            lo: 0,
            hi: 100
        }
        .to_string()
        .contains("500"));
    }

    #[test]
    fn serialization_and_artifact_display() {
        assert_eq!(
            ScoopError::Serialization("bad row".into()).to_string(),
            "serialization error: bad row"
        );
        assert_eq!(
            ScoopError::Artifact("results/x.json: not found".into()).to_string(),
            "artifact error: results/x.json: not found"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ScoopError>();
    }
}
