//! Common identifiers, values, time, message classification, and configuration
//! shared by every crate in the Scoop reproduction.
//!
//! The types in this crate correspond to the "wire level" concepts of the
//! paper: node identifiers, sensor attributes and integer sensor values,
//! simulated time, the classification of radio messages used for the paper's
//! cost accounting (data / summary / mapping / query / reply), and the
//! experiment configuration table from Section 6.
//!
//! Nothing in this crate knows about the network simulator, the routing tree,
//! or the storage index algorithm; it is the dependency root of the workspace.

#![warn(missing_docs)]

pub mod config;
pub mod durable;
pub mod error;
pub mod ids;
pub mod message;
pub mod reading;
pub mod serve;
pub mod sketch;
pub mod spec;
pub mod time;
pub mod value;

pub use config::{
    DataSourceKind, ExperimentConfig, QueryWorkloadConfig, ScoopParams, StoragePolicy,
};
pub use durable::{attribute_code, attribute_from_code, DurableRecord, DURABLE_RECORD_LEN};
pub use error::ScoopError;
pub use ids::{NodeBitmap, NodeId, SeqNo, StorageIndexId, MAX_NODES};
pub use message::{MessageKind, MessageStats};
pub use reading::Reading;
pub use serve::{
    append_overloaded_frame, append_rows_frame, append_rows_payload, Overloaded, QueryPredicate,
    ServeRequest, ServeResponse, ServeRows, SERVE_REQUEST_LEN,
};
pub use sketch::{AggregateOp, AggregateSpec, PartialAggregate, QDigest};
pub use spec::{
    axis_help, AxisDoc, ChurnEvent, FaultSpec, FaultWindow, LinkFamily, LinkSpec, PartitionWindow,
    PolicySpec, RangeWorkload, ScenarioSpec, SinkOutage, TopologyKind, TopologySpec, WorkloadKind,
    WorkloadSpec, AXES, MAX_SINKS,
};
pub use time::{SimDuration, SimTime};
pub use value::{Attribute, Value, ValueRange};
