//! Simulated time.
//!
//! The discrete-event simulator measures time in milliseconds from the start
//! of the experiment. The paper's experiments run for 40 simulated minutes
//! with a 10-minute stabilization prefix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (milliseconds since the start of the run).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time (milliseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Constructs a time from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Constructs a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// This time expressed in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// This time expressed in (truncated) whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Whether this is the zero-length duration (used by serde to skip
    /// defaulted fields so existing artifacts stay byte-identical).
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Constructs a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// The duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration in (truncated) whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// Divides the duration by an integer factor (truncating).
    pub const fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_mins(3).as_secs(), 180);
        assert_eq!(SimDuration::from_secs(15).as_millis(), 15_000);
        assert_eq!(SimDuration::from_mins(4).as_secs(), 240);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
        assert_eq!((t - SimTime::from_secs(10)).as_secs(), 5);
        // subtraction saturates rather than panicking
        assert_eq!(
            (SimTime::from_secs(1) - SimTime::from_secs(5)).as_millis(),
            0
        );
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_millis(1500);
        assert_eq!(t2.as_millis(), 1500);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_secs(15).mul(4).as_secs(), 60);
        assert_eq!(SimDuration::from_secs(60).div(4).as_secs(), 15);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }
}
