//! Experiment and protocol configuration.
//!
//! [`ExperimentConfig::paper_defaults`] reproduces the parameter table from
//! Section 6 of the paper: 62 nodes + 1 basestation, 40 simulated minutes,
//! 15-second sample and query intervals, 110-second summary interval,
//! 240-second remap interval, queries over 1–5 % of the value domain, and the
//! REAL data source.

use crate::{Attribute, ScoopError, SimDuration, ValueRange, MAX_NODES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which storage policy the network runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StoragePolicy {
    /// The paper's contribution: the adaptive, statistics-driven storage index.
    Scoop,
    /// Store every reading locally; flood every query to all nodes.
    Local,
    /// Send every reading to the basestation; queries cost nothing.
    Base,
    /// A static uniform hash from value to node (GHT-like data-centric
    /// storage). The paper evaluates this analytically; we support both the
    /// analytical model and full simulation.
    Hash,
}

impl StoragePolicy {
    /// All policies, in the order used by reports.
    pub const ALL: [StoragePolicy; 4] = [
        StoragePolicy::Scoop,
        StoragePolicy::Local,
        StoragePolicy::Base,
        StoragePolicy::Hash,
    ];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StoragePolicy::Scoop => "scoop",
            StoragePolicy::Local => "local",
            StoragePolicy::Base => "base",
            StoragePolicy::Hash => "hash",
        }
    }
}

impl fmt::Display for StoragePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which synthetic data source drives the sensors (Section 6's table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DataSourceKind {
    /// A trace of real (spatially and temporally correlated) light data.
    /// The paper replayed the Intel Lab trace; we synthesize an equivalent.
    Real,
    /// Each node always produces its own node id as its value.
    Unique,
    /// All nodes produce the same value for the whole experiment.
    Equal,
    /// Uniformly random values in the domain.
    Random,
    /// Each node draws from a Gaussian around a per-node mean (variance 10).
    Gaussian,
}

impl DataSourceKind {
    /// All data sources, in the order used by reports.
    pub const ALL: [DataSourceKind; 5] = [
        DataSourceKind::Unique,
        DataSourceKind::Equal,
        DataSourceKind::Real,
        DataSourceKind::Gaussian,
        DataSourceKind::Random,
    ];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DataSourceKind::Real => "real",
            DataSourceKind::Unique => "unique",
            DataSourceKind::Equal => "equal",
            DataSourceKind::Random => "random",
            DataSourceKind::Gaussian => "gaussian",
        }
    }
}

impl fmt::Display for DataSourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of the Scoop protocol itself (as opposed to the workload).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoopParams {
    /// Interval between summary messages from each node (paper: 110 s).
    pub summary_interval: SimDuration,
    /// Interval between storage-index recomputations at the basestation
    /// (paper: 240 s).
    pub remap_interval: SimDuration,
    /// Number of equal-width bins in the summary histogram (paper: 10).
    pub n_bins: usize,
    /// Capacity of the recent-readings ring buffer used to build the summary
    /// histogram (paper: 30).
    pub recent_readings: usize,
    /// Maximum readings batched into a single data packet (paper: 5).
    pub batch_size: usize,
    /// Maximum entries in the neighbor list reported in summaries (paper: 12).
    pub summary_neighbors: usize,
    /// Maximum entries in the locally kept neighbor list (paper: 32).
    pub neighbor_list_cap: usize,
    /// Maximum entries in the descendants list (paper: 32).
    pub descendants_cap: usize,
    /// If `true`, the basestation also evaluates the expected cost of a
    /// "store-local" index and uses it when cheaper (Section 4). The paper's
    /// SCOOP experiments *disable* this so the adaptive index is always used.
    pub allow_store_local_fallback: bool,
    /// If `true`, the basestation suppresses dissemination of a new index
    /// that is (nearly) identical to the previous one (Section 5.3).
    pub suppress_unchanged_index: bool,
    /// Fraction of entries that must change for an index to be considered
    /// "different enough" to re-disseminate (only used when
    /// `suppress_unchanged_index` is set).
    pub suppression_threshold: f64,
    /// If `true`, routing rule 3 (neighbor-list shortcut) is enabled.
    pub neighbor_shortcut: bool,
    /// Maximum value-range entries per mapping packet when the index is
    /// chunked for dissemination.
    pub mapping_entries_per_packet: usize,
}

impl Default for ScoopParams {
    fn default() -> Self {
        ScoopParams {
            summary_interval: SimDuration::from_secs(110),
            remap_interval: SimDuration::from_secs(240),
            n_bins: 10,
            recent_readings: 30,
            batch_size: 5,
            summary_neighbors: 12,
            neighbor_list_cap: 32,
            descendants_cap: 32,
            allow_store_local_fallback: false,
            suppress_unchanged_index: true,
            suppression_threshold: 0.05,
            neighbor_shortcut: true,
            mapping_entries_per_packet: 8,
        }
    }
}

/// Parameters of the query workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkloadConfig {
    /// Interval between queries issued at the basestation (paper: 15 s).
    pub query_interval: SimDuration,
    /// Minimum fraction of the value domain covered by each query (paper: 1 %).
    pub min_width_frac: f64,
    /// Maximum fraction of the value domain covered by each query (paper: 5 %).
    pub max_width_frac: f64,
    /// How far back in time queries look, as a number of sample intervals.
    pub history_samples: u64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            query_interval: SimDuration::from_secs(15),
            min_width_frac: 0.01,
            max_width_frac: 0.05,
            history_samples: 8,
        }
    }
}

/// Full description of one experiment run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of sensor nodes, excluding the basestation (paper: 62).
    pub num_nodes: usize,
    /// Total simulated duration (paper: 40 minutes).
    pub duration: SimDuration,
    /// Stabilization prefix during which only the routing tree forms
    /// (paper: 10 minutes).
    pub warmup: SimDuration,
    /// Interval between sensor samples on each node (paper: 15 s).
    pub sample_interval: SimDuration,
    /// The attribute being indexed (the REAL trace is light data).
    pub attribute: Attribute,
    /// The attribute's value domain. The synthetic sources use `[0, 100]`;
    /// the REAL trace uses roughly 150 distinct values.
    pub value_domain: ValueRange,
    /// Which data source drives the sensors.
    pub data_source: DataSourceKind,
    /// Which storage policy the network runs.
    pub policy: StoragePolicy,
    /// Scoop protocol parameters (ignored by the other policies).
    pub scoop: ScoopParams,
    /// Query workload parameters.
    pub queries: QueryWorkloadConfig,
    /// Seed for all randomness in the run (topology noise, link loss, data
    /// sources, query generation). Two runs with the same config and seed
    /// produce identical results.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The default parameters from Section 6 of the paper.
    pub fn paper_defaults() -> Self {
        ExperimentConfig {
            num_nodes: 62,
            duration: SimDuration::from_mins(40),
            warmup: SimDuration::from_mins(10),
            sample_interval: SimDuration::from_secs(15),
            attribute: Attribute::Light,
            value_domain: ValueRange::new(0, 149),
            data_source: DataSourceKind::Real,
            policy: StoragePolicy::Scoop,
            scoop: ScoopParams::default(),
            queries: QueryWorkloadConfig::default(),
            seed: 1,
        }
    }

    /// A scaled-down configuration useful for unit and integration tests:
    /// fewer nodes and a shorter run so tests finish quickly while still
    /// exercising every protocol phase (tree formation, summaries, at least
    /// two remaps, queries).
    pub fn small_test() -> Self {
        let mut cfg = Self::paper_defaults();
        cfg.num_nodes = 16;
        cfg.duration = SimDuration::from_mins(12);
        cfg.warmup = SimDuration::from_mins(2);
        cfg.scoop.summary_interval = SimDuration::from_secs(60);
        cfg.scoop.remap_interval = SimDuration::from_secs(120);
        cfg
    }

    /// Validates internal consistency (node count within the bitmap limit,
    /// warmup shorter than the run, sane fractions, non-zero intervals).
    pub fn validate(&self) -> Result<(), ScoopError> {
        if self.num_nodes + 1 > MAX_NODES {
            return Err(ScoopError::TooManyNodes {
                requested: self.num_nodes + 1,
                limit: MAX_NODES,
            });
        }
        if self.num_nodes == 0 {
            return Err(ScoopError::InvalidConfig("num_nodes must be >= 1".into()));
        }
        if self.warmup >= self.duration {
            return Err(ScoopError::InvalidConfig(
                "warmup must be shorter than the total duration".into(),
            ));
        }
        if self.sample_interval.as_millis() == 0 {
            return Err(ScoopError::InvalidConfig(
                "sample_interval must be non-zero".into(),
            ));
        }
        if self.queries.query_interval.as_millis() == 0 {
            return Err(ScoopError::InvalidConfig(
                "query_interval must be non-zero".into(),
            ));
        }
        if self.scoop.n_bins == 0 {
            return Err(ScoopError::InvalidConfig("n_bins must be >= 1".into()));
        }
        if self.scoop.batch_size == 0 {
            return Err(ScoopError::InvalidConfig("batch_size must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.queries.min_width_frac)
            || !(0.0..=1.0).contains(&self.queries.max_width_frac)
            || self.queries.min_width_frac > self.queries.max_width_frac
        {
            return Err(ScoopError::InvalidConfig(
                "query width fractions must satisfy 0 <= min <= max <= 1".into(),
            ));
        }
        if self.value_domain.width() < 2 {
            return Err(ScoopError::InvalidConfig(
                "value domain must contain at least two values".into(),
            ));
        }
        Ok(())
    }

    /// Duration of the measured part of the run (after warmup).
    pub fn measured_duration(&self) -> SimDuration {
        SimDuration(self.duration.0.saturating_sub(self.warmup.0))
    }

    /// Number of sensor samples each node takes during the measured part of
    /// the run.
    pub fn samples_per_node(&self) -> u64 {
        self.measured_duration().as_millis() / self.sample_interval.as_millis()
    }

    /// Number of queries the basestation issues during the measured part of
    /// the run.
    pub fn query_count(&self) -> u64 {
        self.measured_duration().as_millis() / self.queries.query_interval.as_millis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6() {
        let cfg = ExperimentConfig::paper_defaults();
        assert_eq!(cfg.num_nodes, 62);
        assert_eq!(cfg.duration.as_secs(), 40 * 60);
        assert_eq!(cfg.warmup.as_secs(), 10 * 60);
        assert_eq!(cfg.sample_interval.as_secs(), 15);
        assert_eq!(cfg.queries.query_interval.as_secs(), 15);
        assert_eq!(cfg.scoop.summary_interval.as_secs(), 110);
        assert_eq!(cfg.scoop.remap_interval.as_secs(), 240);
        assert_eq!(cfg.scoop.n_bins, 10);
        assert_eq!(cfg.scoop.recent_readings, 30);
        assert_eq!(cfg.scoop.batch_size, 5);
        assert_eq!(cfg.scoop.summary_neighbors, 12);
        assert_eq!(cfg.scoop.descendants_cap, 32);
        assert!(!cfg.scoop.allow_store_local_fallback);
        assert_eq!(cfg.data_source, DataSourceKind::Real);
        assert_eq!(cfg.policy, StoragePolicy::Scoop);
        cfg.validate().expect("paper defaults must be valid");
    }

    #[test]
    fn small_test_config_is_valid() {
        ExperimentConfig::small_test().validate().unwrap();
    }

    #[test]
    fn validation_rejects_too_many_nodes() {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.num_nodes = 200;
        assert!(matches!(
            cfg.validate(),
            Err(ScoopError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_warmup() {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.warmup = cfg.duration;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_query_widths() {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.queries.min_width_frac = 0.5;
        cfg.queries.max_width_frac = 0.1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_nodes_and_bins() {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.num_nodes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.scoop.n_bins = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn derived_counts() {
        let cfg = ExperimentConfig::paper_defaults();
        // 30 measured minutes at one sample / query per 15 s = 120 each.
        assert_eq!(cfg.samples_per_node(), 120);
        assert_eq!(cfg.query_count(), 120);
    }

    #[test]
    fn policy_and_source_names() {
        assert_eq!(StoragePolicy::Scoop.name(), "scoop");
        assert_eq!(DataSourceKind::Gaussian.to_string(), "gaussian");
        let names: std::collections::HashSet<_> =
            StoragePolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), StoragePolicy::ALL.len());
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = ExperimentConfig::paper_defaults();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
