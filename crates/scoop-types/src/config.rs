//! Protocol and workload parameter blocks shared by every scenario.
//!
//! The experiment description itself lives in [`crate::spec`]: a
//! [`ScenarioSpec`](crate::ScenarioSpec) composes these blocks with the
//! topology / link / fault axes. [`ExperimentConfig`] is the legacy name for
//! that type, kept as a thin alias; `ExperimentConfig::paper_defaults()`
//! still reproduces the parameter table from Section 6 of the paper
//! (62 nodes + 1 basestation, 40 simulated minutes, 15-second sample and
//! query intervals, 110-second summary interval, 240-second remap interval,
//! queries over 1–5 % of the value domain, the REAL data source).

use crate::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Legacy name of [`ScenarioSpec`](crate::ScenarioSpec).
///
/// The closed `ExperimentConfig` struct was redesigned into the composable
/// spec; see the README migration table for the old-field → new-axis mapping
/// (e.g. `config.policy` → `spec.policy.kind`, `config.data_source` →
/// `spec.workload.data_source`).
pub type ExperimentConfig = crate::spec::ScenarioSpec;

/// Which storage policy the network runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StoragePolicy {
    /// The paper's contribution: the adaptive, statistics-driven storage index.
    Scoop,
    /// Store every reading locally; flood every query to all nodes.
    Local,
    /// Send every reading to the basestation; queries cost nothing.
    Base,
    /// A static uniform hash from value to node (GHT-like data-centric
    /// storage). The paper evaluates this analytically; we support both the
    /// analytical model and full simulation.
    Hash,
}

impl StoragePolicy {
    /// All policies, in the order used by reports.
    pub const ALL: [StoragePolicy; 4] = [
        StoragePolicy::Scoop,
        StoragePolicy::Local,
        StoragePolicy::Base,
        StoragePolicy::Hash,
    ];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StoragePolicy::Scoop => "scoop",
            StoragePolicy::Local => "local",
            StoragePolicy::Base => "base",
            StoragePolicy::Hash => "hash",
        }
    }
}

impl fmt::Display for StoragePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which synthetic data source drives the sensors (Section 6's table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DataSourceKind {
    /// A trace of real (spatially and temporally correlated) light data.
    /// The paper replayed the Intel Lab trace; we synthesize an equivalent.
    Real,
    /// Each node always produces its own node id as its value.
    Unique,
    /// All nodes produce the same value for the whole experiment.
    Equal,
    /// Uniformly random values in the domain.
    Random,
    /// Each node draws from a Gaussian around a per-node mean (variance 10).
    Gaussian,
}

impl DataSourceKind {
    /// All data sources, in the order used by reports.
    pub const ALL: [DataSourceKind; 5] = [
        DataSourceKind::Unique,
        DataSourceKind::Equal,
        DataSourceKind::Real,
        DataSourceKind::Gaussian,
        DataSourceKind::Random,
    ];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DataSourceKind::Real => "real",
            DataSourceKind::Unique => "unique",
            DataSourceKind::Equal => "equal",
            DataSourceKind::Random => "random",
            DataSourceKind::Gaussian => "gaussian",
        }
    }
}

impl fmt::Display for DataSourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of the Scoop protocol itself (as opposed to the workload).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoopParams {
    /// Interval between summary messages from each node (paper: 110 s).
    pub summary_interval: SimDuration,
    /// Interval between storage-index recomputations at the basestation
    /// (paper: 240 s).
    pub remap_interval: SimDuration,
    /// Number of equal-width bins in the summary histogram (paper: 10).
    pub n_bins: usize,
    /// Capacity of the recent-readings ring buffer used to build the summary
    /// histogram (paper: 30).
    pub recent_readings: usize,
    /// Maximum readings batched into a single data packet (paper: 5).
    pub batch_size: usize,
    /// Maximum entries in the neighbor list reported in summaries (paper: 12).
    pub summary_neighbors: usize,
    /// Maximum entries in the locally kept neighbor list (paper: 32).
    pub neighbor_list_cap: usize,
    /// Maximum entries in the descendants list (paper: 32).
    pub descendants_cap: usize,
    /// If `true`, the basestation also evaluates the expected cost of a
    /// "store-local" index and uses it when cheaper (Section 4). The paper's
    /// SCOOP experiments *disable* this so the adaptive index is always used.
    pub allow_store_local_fallback: bool,
    /// If `true`, the basestation suppresses dissemination of a new index
    /// that is (nearly) identical to the previous one (Section 5.3).
    pub suppress_unchanged_index: bool,
    /// Fraction of entries that must change for an index to be considered
    /// "different enough" to re-disseminate (only used when
    /// `suppress_unchanged_index` is set).
    pub suppression_threshold: f64,
    /// If `true`, routing rule 3 (neighbor-list shortcut) is enabled.
    pub neighbor_shortcut: bool,
    /// Maximum value-range entries per mapping packet when the index is
    /// chunked for dissemination.
    pub mapping_entries_per_packet: usize,
    /// Multi-sink only: how long a sink may stay silent before its peers
    /// treat it as dead and take over its attribute range. Zero — the
    /// default, skipped during serialization — means "auto": three remap
    /// intervals (see [`ScoopParams::effective_failover_timeout`]).
    #[serde(default, skip_serializing_if = "SimDuration::is_zero")]
    pub failover_timeout: SimDuration,
}

impl ScoopParams {
    /// The failover timeout actually used: the configured value, or three
    /// remap intervals when left at the zero default. Three intervals
    /// tolerate two consecutive lost liveness beacons before a takeover.
    pub fn effective_failover_timeout(&self) -> SimDuration {
        if self.failover_timeout.is_zero() {
            self.remap_interval.mul(3)
        } else {
            self.failover_timeout
        }
    }
}

impl Default for ScoopParams {
    fn default() -> Self {
        ScoopParams {
            summary_interval: SimDuration::from_secs(110),
            remap_interval: SimDuration::from_secs(240),
            n_bins: 10,
            recent_readings: 30,
            batch_size: 5,
            summary_neighbors: 12,
            neighbor_list_cap: 32,
            descendants_cap: 32,
            allow_store_local_fallback: false,
            suppress_unchanged_index: true,
            suppression_threshold: 0.05,
            neighbor_shortcut: true,
            mapping_entries_per_packet: 8,
            failover_timeout: SimDuration::ZERO,
        }
    }
}

/// Parameters of the query workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkloadConfig {
    /// Interval between queries issued at the basestation (paper: 15 s).
    pub query_interval: SimDuration,
    /// Minimum fraction of the value domain covered by each query (paper: 1 %).
    pub min_width_frac: f64,
    /// Maximum fraction of the value domain covered by each query (paper: 5 %).
    pub max_width_frac: f64,
    /// How far back in time queries look, as a number of sample intervals.
    pub history_samples: u64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            query_interval: SimDuration::from_secs(15),
            min_width_frac: 0.01,
            max_width_frac: 0.05,
            history_samples: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_and_source_names() {
        assert_eq!(StoragePolicy::Scoop.name(), "scoop");
        assert_eq!(DataSourceKind::Gaussian.to_string(), "gaussian");
        let names: std::collections::HashSet<_> =
            StoragePolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), StoragePolicy::ALL.len());
    }

    #[test]
    fn legacy_alias_still_builds_the_paper_scenario() {
        // The compatibility alias: old call sites keep compiling and get the
        // same Section 6 defaults, now shaped as composable components.
        let cfg = ExperimentConfig::paper_defaults();
        assert_eq!(cfg, crate::ScenarioSpec::paper_defaults());
        assert_eq!(cfg.policy.scoop.summary_interval.as_secs(), 110);
        cfg.validate().unwrap();
    }

    #[test]
    fn scoop_params_defaults_match_the_paper_table() {
        let p = ScoopParams::default();
        assert_eq!(p.summary_interval.as_secs(), 110);
        assert_eq!(p.remap_interval.as_secs(), 240);
        assert_eq!(p.n_bins, 10);
        assert_eq!(p.recent_readings, 30);
        assert_eq!(p.batch_size, 5);
        assert_eq!(p.summary_neighbors, 12);
        assert_eq!(p.descendants_cap, 32);
        assert!(!p.allow_store_local_fallback);
    }

    #[test]
    fn query_workload_defaults_match_the_paper_table() {
        let q = QueryWorkloadConfig::default();
        assert_eq!(q.query_interval.as_secs(), 15);
        assert!((q.min_width_frac - 0.01).abs() < 1e-12);
        assert!((q.max_width_frac - 0.05).abs() < 1e-12);
    }
}
