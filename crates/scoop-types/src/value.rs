//! Sensor attributes, integer sensor values, and value ranges.
//!
//! The paper indexes integer values of a single attribute per storage index
//! (Section 3); its REAL experiments used a value domain of roughly 150
//! distinct values and the synthetic sources use the range `[0, 100]`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A sensor reading value.
///
/// Scoop indexes integer values (or integer classes produced by local
/// pre-processing, e.g. "vibration level on a scale of 1-20"); 12-bit raw ADC
/// readings fit comfortably in an `i32`.
pub type Value = i32;

/// The physical (or derived) quantity an index is built over.
///
/// The attribute interface in the paper "currently supports temperature,
/// humidity, light, acceleration, and sound volume sensors" (Section 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Attribute {
    /// Degrees (integerized).
    Temperature,
    /// Relative humidity.
    Humidity,
    /// Light level (the REAL trace attribute).
    Light,
    /// Vibration / acceleration class.
    Acceleration,
    /// Sound volume.
    SoundVolume,
}

impl Attribute {
    /// All supported attributes.
    pub const ALL: [Attribute; 5] = [
        Attribute::Temperature,
        Attribute::Humidity,
        Attribute::Light,
        Attribute::Acceleration,
        Attribute::SoundVolume,
    ];

    /// A short lowercase name, used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Attribute::Temperature => "temperature",
            Attribute::Humidity => "humidity",
            Attribute::Light => "light",
            Attribute::Acceleration => "acceleration",
            Attribute::SoundVolume => "sound_volume",
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An inclusive range of sensor values, `[lo, hi]`.
///
/// Storage indices map value ranges to owner nodes (Figure 1); queries carry
/// one or more value ranges of interest (Section 5.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValueRange {
    /// Smallest value in the range (inclusive).
    pub lo: Value,
    /// Largest value in the range (inclusive).
    pub hi: Value,
}

impl ValueRange {
    /// Creates the inclusive range `[lo, hi]`, swapping the endpoints if they
    /// were given in the wrong order.
    pub fn new(lo: Value, hi: Value) -> Self {
        if lo <= hi {
            ValueRange { lo, hi }
        } else {
            ValueRange { lo: hi, hi: lo }
        }
    }

    /// The single-value range `[v, v]`.
    pub fn point(v: Value) -> Self {
        ValueRange { lo: v, hi: v }
    }

    /// Number of integer values contained in the range.
    pub fn width(&self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }

    /// Returns `true` if `v` lies inside the range.
    #[inline]
    pub fn contains(&self, v: Value) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` if the two ranges share at least one value.
    pub fn overlaps(&self, other: &ValueRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Returns `true` if `other` lies entirely inside `self`.
    pub fn covers(&self, other: &ValueRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// The intersection of the two ranges, if non-empty.
    pub fn intersect(&self, other: &ValueRange) -> Option<ValueRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(ValueRange { lo, hi })
        } else {
            None
        }
    }

    /// Returns `true` if `other` starts exactly where `self` ends (so the two
    /// can be coalesced into one contiguous range).
    pub fn adjacent_below(&self, other: &ValueRange) -> bool {
        self.hi + 1 == other.lo
    }

    /// Iterates over every value in the range.
    pub fn values(&self) -> impl Iterator<Item = Value> {
        self.lo..=self.hi
    }
}

impl fmt::Debug for ValueRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl fmt::Display for ValueRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_new_normalizes_order() {
        let r = ValueRange::new(10, 3);
        assert_eq!((r.lo, r.hi), (3, 10));
        assert_eq!(r.width(), 8);
    }

    #[test]
    fn point_range() {
        let r = ValueRange::point(7);
        assert_eq!(r.width(), 1);
        assert!(r.contains(7));
        assert!(!r.contains(8));
    }

    #[test]
    fn overlap_and_cover() {
        let a = ValueRange::new(0, 10);
        let b = ValueRange::new(5, 15);
        let c = ValueRange::new(11, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.covers(&ValueRange::new(2, 9)));
        assert!(!a.covers(&b));
    }

    #[test]
    fn intersect() {
        let a = ValueRange::new(0, 10);
        let b = ValueRange::new(5, 15);
        assert_eq!(a.intersect(&b), Some(ValueRange::new(5, 10)));
        assert_eq!(a.intersect(&ValueRange::new(20, 30)), None);
    }

    #[test]
    fn adjacency() {
        let a = ValueRange::new(0, 4);
        let b = ValueRange::new(5, 9);
        assert!(a.adjacent_below(&b));
        assert!(!b.adjacent_below(&a));
        assert!(!a.adjacent_below(&ValueRange::new(6, 9)));
    }

    #[test]
    fn values_iterator() {
        let vals: Vec<Value> = ValueRange::new(3, 6).values().collect();
        assert_eq!(vals, vec![3, 4, 5, 6]);
    }

    #[test]
    fn attribute_names_are_distinct() {
        let names: std::collections::HashSet<_> = Attribute::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), Attribute::ALL.len());
    }
}
