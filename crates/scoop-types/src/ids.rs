//! Node, sequence-number, and storage-index identifiers, plus the node
//! bitmap the basestation embeds in query packets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The maximum number of nodes a single deployment can address.
///
/// The paper's query packets carry a bitmap with one bit per node, which
/// "puts an upper bound to the size of the sensor network; 128 nodes in our
/// current implementation" (Section 5.5). We widen the limit to 32,768 so the
/// large scaling scenarios fit; the mechanism — one bit per addressable node
/// in every query packet — is unchanged, and the bitmap allocates words only
/// up to the highest selected id, so small deployments pay for their own
/// size, not for the limit. Raising this further requires widening
/// [`NodeId`] past `u16` (the remaining step toward 100k+ nodes).
pub const MAX_NODES: usize = 32_768;

/// Identifier of a sensor node.
///
/// The basestation is by convention [`NodeId::BASESTATION`] (id 0); ordinary
/// sensor nodes are numbered from 1. Identifiers are small integers so they
/// can be used directly as indices into per-node tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The distinguished basestation / root node.
    pub const BASESTATION: NodeId = NodeId(0);

    /// Returns `true` if this is the basestation.
    #[inline]
    pub fn is_basestation(self) -> bool {
        self == Self::BASESTATION
    }

    /// The identifier as a `usize`, usable as a table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_basestation() {
            write!(f, "base")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Monotonically increasing per-node packet sequence number.
///
/// Every outgoing packet carries its sender's current sequence number; a
/// neighbor that snoops the channel counts gaps in the sequence to estimate
/// link quality (Section 5.2, "Summary topology info").
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct SeqNo(pub u32);

impl SeqNo {
    /// Returns the next sequence number, wrapping on overflow.
    #[inline]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.wrapping_add(1))
    }

    /// Number of sequence numbers between `earlier` and `self`, assuming
    /// `self` was generated at or after `earlier` (wrapping arithmetic).
    #[inline]
    pub fn distance_from(self, earlier: SeqNo) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }
}

/// Identifier (epoch number) of a storage index.
///
/// The basestation numbers every storage index it generates; nodes report the
/// newest complete index they hold in their summary messages, and data
/// packets carry the index id that determined their destination so that nodes
/// with a *newer* index can re-route them (Section 5.4, rule 1).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct StorageIndexId(pub u32);

impl StorageIndexId {
    /// The "no index yet" sentinel: nodes that have never assembled a complete
    /// storage index report this and default to storing locally.
    pub const NONE: StorageIndexId = StorageIndexId(0);

    /// Returns the next index id.
    #[inline]
    pub fn next(self) -> StorageIndexId {
        StorageIndexId(self.0 + 1)
    }

    /// `true` if this is a real (assembled) index rather than the sentinel.
    #[inline]
    pub fn is_some(self) -> bool {
        self != Self::NONE
    }
}

/// Bitmap with one bit per addressable node, heap-backed and sized to the
/// highest selected id.
///
/// The basestation sets the bit of every node it wants an answer from and
/// embeds the bitmap in the query packet; Scoop's modified Trickle uses it
/// (together with neighbor and descendants lists) to decide whether
/// re-broadcasting a query packet is useful (Section 5.5).
///
/// Invariant: `words` never ends in a zero word, so two bitmaps selecting
/// the same nodes are represented identically and the derived
/// `PartialEq`/`Hash` stay correct regardless of insertion history.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeBitmap {
    words: Vec<u64>,
}

impl NodeBitmap {
    /// An empty bitmap (no nodes selected). Allocates nothing.
    pub const fn empty() -> Self {
        NodeBitmap { words: Vec::new() }
    }

    /// A bitmap with every node in `0..n` selected.
    pub fn all(n: usize) -> Self {
        let mut bm = Self::empty();
        for i in 0..n.min(MAX_NODES) {
            bm.insert(NodeId(i as u16));
        }
        bm
    }

    /// Builds a bitmap from an iterator of node ids.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut bm = Self::empty();
        for n in nodes {
            bm.insert(n);
        }
        bm
    }

    /// Selects `node`. Nodes above [`MAX_NODES`] are ignored.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        let i = node.index();
        if i < MAX_NODES {
            let w = i / 64;
            if w >= self.words.len() {
                self.words.resize(w + 1, 0);
            }
            self.words[w] |= 1 << (i % 64);
        }
    }

    /// Deselects `node`.
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        let w = node.index() / 64;
        if w < self.words.len() {
            self.words[w] &= !(1 << (node.index() % 64));
            while self.words.last() == Some(&0) {
                self.words.pop();
            }
        }
    }

    /// Returns `true` if `node` is selected.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        match self.words.get(i / 64) {
            Some(w) => w & (1 << (i % 64)) != 0,
            None => false,
        }
    }

    /// Number of selected nodes.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no node is selected.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates over the selected node ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| NodeId((wi * 64 + b) as u16))
        })
    }

    /// Returns `true` if any selected node is also in `other`.
    pub fn intersects(&self, other: &NodeBitmap) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }
}

// Hand-written (de)serialization: the wire schema is the historical derived
// one — `{"words": [u64, ...]}` — but deserialization must re-establish the
// no-trailing-zero-words invariant, because bitmaps written by the old
// fixed-array representation padded with zero words up to the compile-time
// limit.
impl Serialize for NodeBitmap {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "words".to_string(),
            Serialize::to_value(&self.words),
        )])
    }
}

impl Deserialize for NodeBitmap {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let null = serde::Value::Null;
        let mut words: Vec<u64> = Deserialize::from_value(v.get("words").unwrap_or(&null))?;
        while words.last() == Some(&0) {
            words.pop();
        }
        Ok(NodeBitmap { words })
    }
}

impl Default for NodeBitmap {
    fn default() -> Self {
        Self::empty()
    }
}

impl fmt::Debug for NodeBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeBitmap {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Self::from_nodes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basestation_is_node_zero() {
        assert!(NodeId(0).is_basestation());
        assert!(!NodeId(1).is_basestation());
        assert_eq!(NodeId::BASESTATION.index(), 0);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(format!("{}", NodeId(0)), "base");
        assert_eq!(format!("{}", NodeId(7)), "n7");
    }

    #[test]
    fn seqno_wraps() {
        let s = SeqNo(u32::MAX);
        assert_eq!(s.next(), SeqNo(0));
        assert_eq!(SeqNo(0).distance_from(SeqNo(u32::MAX)), 1);
        assert_eq!(SeqNo(10).distance_from(SeqNo(4)), 6);
    }

    #[test]
    fn storage_index_id_ordering_and_sentinel() {
        assert!(!StorageIndexId::NONE.is_some());
        let a = StorageIndexId::NONE.next();
        assert!(a.is_some());
        assert!(a.next() > a);
    }

    #[test]
    fn bitmap_insert_remove_contains() {
        let mut bm = NodeBitmap::empty();
        assert!(bm.is_empty());
        bm.insert(NodeId(3));
        bm.insert(NodeId(64));
        bm.insert(NodeId((MAX_NODES - 1) as u16));
        assert!(bm.contains(NodeId(3)));
        assert!(bm.contains(NodeId(64)));
        assert!(bm.contains(NodeId((MAX_NODES - 1) as u16)));
        assert!(!bm.contains(NodeId(4)));
        assert_eq!(bm.len(), 3);
        bm.remove(NodeId(64));
        assert!(!bm.contains(NodeId(64)));
        assert_eq!(bm.len(), 2);
    }

    #[test]
    fn bitmap_out_of_range_is_ignored() {
        let mut bm = NodeBitmap::empty();
        bm.insert(NodeId(40_000)); // above MAX_NODES, still a valid u16
        assert!(bm.is_empty());
        assert!(!bm.contains(NodeId(40_000)));
    }

    #[test]
    fn bitmap_storage_tracks_highest_selected_id() {
        // Heap-backed: an empty bitmap holds no words, and removing the
        // highest bit shrinks the storage back so equality/hashing never
        // see stale trailing zeros.
        let mut bm = NodeBitmap::empty();
        bm.insert(NodeId(3));
        bm.insert(NodeId(9_000));
        bm.remove(NodeId(9_000));
        assert_eq!(bm, NodeBitmap::from_nodes([NodeId(3)]));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |b: &NodeBitmap| {
            let mut s = DefaultHasher::new();
            b.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&bm), h(&NodeBitmap::from_nodes([NodeId(3)])));
    }

    #[test]
    fn bitmap_serde_reads_fixed_array_era_words() {
        // Bitmaps written by the old `[u64; 8]` representation carry
        // trailing zero words; deserialization must trim them so the
        // round-tripped value equals a freshly built one.
        let legacy = format!(
            "{{\"words\":[{}]}}",
            std::iter::once("9".to_string())
                .chain(std::iter::repeat_n("0".to_string(), 7))
                .collect::<Vec<_>>()
                .join(",")
        );
        let bm: NodeBitmap = serde_json::from_str(&legacy).unwrap();
        assert_eq!(bm, NodeBitmap::from_nodes([NodeId(0), NodeId(3)]));
        let json = serde_json::to_string(&bm).unwrap();
        assert_eq!(json, "{\"words\":[9]}");
        let back: NodeBitmap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bm);
    }

    #[test]
    fn bitmap_addresses_the_256_node_scaling_scenario() {
        // MAX_NODES was raised from the paper's 128 so a 256-sensor grid
        // (257 nodes with the basestation) is addressable.
        const { assert!(MAX_NODES >= 257) };
        let bm = NodeBitmap::all(257);
        assert_eq!(bm.len(), 257);
        assert!(bm.contains(NodeId(256)));
    }

    #[test]
    fn bitmap_all_and_iter_roundtrip() {
        let bm = NodeBitmap::all(5);
        let ids: Vec<NodeId> = bm.iter().collect();
        assert_eq!(ids, (0..5).map(|i| NodeId(i as u16)).collect::<Vec<_>>());
        let bm2: NodeBitmap = ids.into_iter().collect();
        assert_eq!(bm, bm2);
    }

    #[test]
    fn bitmap_intersects() {
        let a = NodeBitmap::from_nodes([NodeId(1), NodeId(70)]);
        let b = NodeBitmap::from_nodes([NodeId(70)]);
        let c = NodeBitmap::from_nodes([NodeId(2)]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }
}
