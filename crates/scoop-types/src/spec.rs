//! The composable scenario specification: one serializable component per
//! simulation axis.
//!
//! A [`ScenarioSpec`] fully describes one experiment run. Every axis that
//! used to be welded into the engine-construction code is an explicit,
//! serializable component here:
//!
//! * [`TopologySpec`] — placement family plus arena / jitter / radio-range
//!   parameters;
//! * [`LinkSpec`] — loss-model family plus calibration knobs (loss floor,
//!   edge delivery, distance exponent, asymmetry noise);
//! * [`WorkloadSpec`] — data source, sampling, attribute/domain, and the
//!   query distribution;
//! * [`PolicySpec`] — storage policy plus the Scoop protocol parameters;
//! * [`FaultSpec`] — scheduled radio-outage windows (node death / churn).
//!
//! `scoop_sim::SimBuilder` assembles an engine from a spec through the
//! `TopologyGen` / `LinkGen` factory traits in `scoop-net`, and the
//! string-keyed *axis registry* ([`ScenarioSpec::set_axis`]) lets the CLI,
//! sweep grids, and benches override any axis without recompiling
//! (`topology=grid`, `link.loss_floor=0.1`, `nodes=96`, ...).
//!
//! The legacy `ExperimentConfig` name survives as a type alias of
//! [`ScenarioSpec`]; see the README's migration table for the old-field →
//! new-axis mapping.

use crate::config::{DataSourceKind, QueryWorkloadConfig, ScoopParams, StoragePolicy};
use crate::sketch::{AggregateOp, AggregateSpec};
use crate::{Attribute, NodeId, ScoopError, SimDuration, ValueRange, MAX_NODES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which placement generator builds the node layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Jittered grid across a long rectangular office floor, basestation at
    /// one end. Mimics the paper's 62-node indoor testbed: multi-hop depth of
    /// roughly 4–6 hops and ~20 % pairwise connectivity.
    OfficeFloor,
    /// Regular square grid, basestation in a corner.
    Grid,
    /// Uniform random placement in a square arena, basestation centered.
    UniformRandom,
    /// A straight line of nodes; the deepest possible routing tree.
    Linear,
}

impl TopologyKind {
    /// All kinds, in registry order.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::OfficeFloor,
        TopologyKind::Grid,
        TopologyKind::UniformRandom,
        TopologyKind::Linear,
    ];

    /// Short lowercase name used by the axis registry and reports.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::OfficeFloor => "office",
            TopologyKind::Grid => "grid",
            TopologyKind::UniformRandom => "random",
            TopologyKind::Linear => "linear",
        }
    }

    /// Parses a registry name.
    pub fn from_name(name: &str) -> Option<TopologyKind> {
        match name {
            "office" | "office-floor" | "office_floor" => Some(TopologyKind::OfficeFloor),
            "grid" => Some(TopologyKind::Grid),
            "random" | "uniform" | "uniform-random" => Some(TopologyKind::UniformRandom),
            "linear" | "line" => Some(TopologyKind::Linear),
            _ => None,
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Node-placement axis: generator family plus its geometry parameters.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct TopologySpec {
    /// The placement family.
    pub kind: TopologyKind,
    /// Arena density in square meters per node (office floor and uniform
    /// random placements).
    pub area_per_node: f64,
    /// Placement jitter as a fraction of the grid cell (office floor only;
    /// `0` disables jitter entirely).
    pub jitter: f64,
    /// Distance between adjacent nodes in meters (grid and linear layouts).
    pub spacing: f64,
    /// Multiplier on the family's natural radio range (`1.0` keeps the
    /// calibrated default; `<1` thins connectivity, `>1` thickens it).
    pub range_factor: f64,
}

impl TopologySpec {
    /// The paper's testbed-like office floor with the calibrated defaults.
    pub fn office_floor() -> Self {
        TopologySpec {
            kind: TopologyKind::OfficeFloor,
            ..Self::base()
        }
    }

    /// A regular grid with the default 10 m spacing.
    pub fn grid() -> Self {
        TopologySpec {
            kind: TopologyKind::Grid,
            ..Self::base()
        }
    }

    /// Uniform random placement with the default density.
    pub fn uniform_random() -> Self {
        TopologySpec {
            kind: TopologyKind::UniformRandom,
            ..Self::base()
        }
    }

    /// A linear chain with the default 10 m spacing.
    pub fn linear() -> Self {
        TopologySpec {
            kind: TopologyKind::Linear,
            ..Self::base()
        }
    }

    fn base() -> Self {
        TopologySpec {
            kind: TopologyKind::OfficeFloor,
            area_per_node: 25.0,
            jitter: 0.35,
            spacing: 10.0,
            range_factor: 1.0,
        }
    }

    /// Validates the geometry parameters.
    pub fn validate(&self) -> Result<(), ScoopError> {
        if self.area_per_node <= 0.0 {
            return Err(ScoopError::InvalidConfig(
                "topology.area_per_node must be > 0".into(),
            ));
        }
        if !(0.0..0.5).contains(&self.jitter) {
            return Err(ScoopError::InvalidConfig(
                "topology.jitter must be in [0, 0.5)".into(),
            ));
        }
        if self.spacing <= 0.0 {
            return Err(ScoopError::InvalidConfig(
                "topology.spacing must be > 0".into(),
            ));
        }
        if self.range_factor <= 0.0 {
            return Err(ScoopError::InvalidConfig(
                "topology.range_factor must be > 0".into(),
            ));
        }
        Ok(())
    }
}

impl Default for TopologySpec {
    /// The paper's office-floor testbed layout.
    fn default() -> Self {
        Self::office_floor()
    }
}

/// Which loss-model family derives link quality from the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LinkFamily {
    /// Delivery probability decays with distance from `1 - loss_floor` at
    /// zero range to `edge_delivery` at the radio-range edge, with
    /// per-direction asymmetry noise. This is the (previously hardcoded)
    /// model calibrated to the paper's 25–90 % loss band.
    DistanceDecay,
    /// Every in-range directed link delivers with probability 1 (isolates
    /// protocol logic from loss).
    Perfect,
}

impl LinkFamily {
    /// Short lowercase name used by the axis registry.
    pub fn name(self) -> &'static str {
        match self {
            LinkFamily::DistanceDecay => "distance",
            LinkFamily::Perfect => "perfect",
        }
    }

    /// Parses a registry name.
    pub fn from_name(name: &str) -> Option<LinkFamily> {
        match name {
            "distance" | "distance-decay" | "distance_decay" => Some(LinkFamily::DistanceDecay),
            "perfect" | "lossless" => Some(LinkFamily::Perfect),
            _ => None,
        }
    }
}

impl fmt::Display for LinkFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Link-loss axis: model family plus calibration knobs.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// The loss-model family.
    pub family: LinkFamily,
    /// Loss probability of the very best (zero-distance) link; delivery at
    /// distance 0 is `1 - loss_floor`. The calibrated default is `0.22`.
    pub loss_floor: f64,
    /// Delivery probability right at the radio-range edge (default `0.10`).
    pub edge_delivery: f64,
    /// Shape of the decay between the two endpoints: delivery falls with
    /// `(d / range) ^ distance_exponent`. `1.0` (default) is linear decay;
    /// `> 1` keeps near links good and punishes far ones harder.
    pub distance_exponent: f64,
    /// Standard deviation of the per-direction noise added to delivery
    /// probability (produces the paper's "slightly asymmetric" links).
    pub asymmetry_noise: f64,
}

impl LinkSpec {
    /// The original hardcoded distance-decay model (the pre-calibration
    /// default): linear decay from 78 % delivery at distance 0 to 10 % at
    /// the range edge. Kept addressable — as this constructor and as the
    /// `link=legacy` axis preset — so the byte-identity proofs of the
    /// pre-calibration engine survive the default flip.
    pub fn legacy() -> Self {
        LinkSpec {
            family: LinkFamily::DistanceDecay,
            loss_floor: 0.22,
            edge_delivery: 0.10,
            distance_exponent: 1.0,
            asymmetry_noise: 0.06,
        }
    }

    /// The calibrated distance-decay model: the argmin of the committed
    /// `results/calibration.json` grid search against the paper's
    /// reliability prose numbers and Figure 3 cost ratio (see
    /// `scoop-lab calibrate`). Quadratic decay keeps near links good while
    /// still reaching the paper's loss band toward the range edge; at paper
    /// scale this point measures ~86 % storage / ~78 % query success with a
    /// SCOOP/BASE cost ratio of ~0.75 — all three inside the paper
    /// tolerances.
    pub fn calibrated() -> Self {
        LinkSpec {
            family: LinkFamily::DistanceDecay,
            loss_floor: 0.10,
            edge_delivery: 0.20,
            distance_exponent: 2.0,
            asymmetry_noise: 0.06,
        }
    }

    /// The defaults used to reproduce the paper — the calibrated model.
    pub fn paper_defaults() -> Self {
        Self::calibrated()
    }

    /// A loss-free model.
    pub fn perfect() -> Self {
        LinkSpec {
            family: LinkFamily::Perfect,
            ..Self::paper_defaults()
        }
    }

    /// Delivery probability of a zero-distance link.
    pub fn max_delivery(&self) -> f64 {
        1.0 - self.loss_floor
    }

    /// Largest accepted `distance_exponent`. Beyond this the decay curve is
    /// numerically a step function (every link is either pristine or at the
    /// edge floor), which no physical radio model needs — and enormous
    /// exponents are almost always a typo'd calibration value.
    pub const MAX_DISTANCE_EXPONENT: f64 = 64.0;

    /// Validates the calibration knobs.
    ///
    /// Every comparison is written so that a `NaN` knob *fails* it (a `NaN`
    /// compares false against everything, so the checks assert the valid
    /// range rather than testing for the invalid one), and the exponent is
    /// additionally capped at [`Self::MAX_DISTANCE_EXPONENT`] and required
    /// finite. Adversarial specs get a typed [`ScoopError::InvalidConfig`],
    /// never a panic or a silently-NaN link table.
    pub fn validate(&self) -> Result<(), ScoopError> {
        if !(0.0..1.0).contains(&self.loss_floor) {
            return Err(ScoopError::InvalidConfig(
                "link.loss_floor must be in [0, 1)".into(),
            ));
        }
        if !(self.edge_delivery > 0.0 && self.edge_delivery <= 1.0) {
            return Err(ScoopError::InvalidConfig(
                "link.edge_delivery must be in (0, 1]".into(),
            ));
        }
        // `loss_floor` and `edge_delivery` are already known finite here, so
        // a plain comparison is NaN-safe.
        if self.edge_delivery > self.max_delivery() {
            return Err(ScoopError::InvalidConfig(
                "link.edge_delivery must not exceed 1 - link.loss_floor".into(),
            ));
        }
        if !(self.distance_exponent > 0.0 && self.distance_exponent <= Self::MAX_DISTANCE_EXPONENT)
        {
            return Err(ScoopError::InvalidConfig(format!(
                "link.distance_exponent must be in (0, {}]",
                Self::MAX_DISTANCE_EXPONENT
            )));
        }
        if !(self.asymmetry_noise >= 0.0 && self.asymmetry_noise.is_finite()) {
            return Err(ScoopError::InvalidConfig(
                "link.asymmetry_noise must be finite and >= 0".into(),
            ));
        }
        Ok(())
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Which query shape the basestation's workload issues.
///
/// `Point` is the seed behavior: narrow value queries drawn from the
/// `queries` width band. The two newer kinds exercise the query shapes the
/// paper's competitors were built for — fixed-width range queries and
/// whole-domain aggregates (see `docs/WORKLOADS.md` for the full contract,
/// including how each policy routes each kind).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The seed behavior: value queries drawn from the configured
    /// `min_width_frac..=max_width_frac` band.
    #[default]
    Point,
    /// Fixed-width range queries: every query covers exactly `width_frac` of
    /// the value domain, with a uniformly drawn lower bound.
    Range(RangeWorkload),
    /// Whole-domain aggregate queries, answered in-network by merging
    /// partial aggregates hop-by-hop up the routing tree.
    Aggregate(AggregateSpec),
}

/// Knobs of the fixed-width range workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RangeWorkload {
    /// Query width as a fraction of the value domain, `(0, 1]`.
    pub width_frac: f64,
}

impl WorkloadKind {
    /// Default range width when an axis flips the kind without supplying it.
    pub const DEFAULT_RANGE_WIDTH: f64 = 0.05;
    /// Default quantile error budget.
    pub const DEFAULT_EPSILON: f64 = 0.05;

    /// A range workload of the given width.
    pub fn range(width_frac: f64) -> Self {
        WorkloadKind::Range(RangeWorkload { width_frac })
    }

    /// An aggregate workload with the given operator and error budget.
    pub fn aggregate(op: AggregateOp, epsilon: f64) -> Self {
        WorkloadKind::Aggregate(AggregateSpec { op, epsilon })
    }

    /// Whether this is the seed point-query workload (the serde skip
    /// predicate: a `Point` spec serializes exactly as before the kind
    /// existed).
    pub fn is_point(&self) -> bool {
        matches!(self, WorkloadKind::Point)
    }

    /// The aggregate clause queries of this kind carry, if any.
    pub fn aggregate_spec(&self) -> Option<AggregateSpec> {
        match *self {
            WorkloadKind::Aggregate(spec) => Some(spec),
            _ => None,
        }
    }
}

/// Workload axis: what the sensors produce and what the basestation asks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which data source drives the sensors.
    pub data_source: DataSourceKind,
    /// Interval between sensor samples on each node (paper: 15 s).
    pub sample_interval: SimDuration,
    /// The attribute being indexed (the REAL trace is light data).
    pub attribute: Attribute,
    /// The attribute's value domain. The synthetic sources use `[0, 100]`;
    /// the REAL trace uses roughly 150 distinct values.
    pub value_domain: ValueRange,
    /// Query workload parameters.
    pub queries: QueryWorkloadConfig,
    /// The query shape (point / range / aggregate). Defaults to the seed
    /// point workload and is skipped when serializing it, so every committed
    /// artifact keeps its byte-identical shape.
    #[serde(default, skip_serializing_if = "WorkloadKind::is_point")]
    pub kind: WorkloadKind,
}

impl WorkloadSpec {
    /// Section 6's workload: REAL light data, 15-second samples and queries
    /// over 1–5 % of the domain.
    pub fn paper_defaults() -> Self {
        WorkloadSpec {
            data_source: DataSourceKind::Real,
            sample_interval: SimDuration::from_secs(15),
            attribute: Attribute::Light,
            value_domain: ValueRange::new(0, 149),
            queries: QueryWorkloadConfig::default(),
            kind: WorkloadKind::Point,
        }
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Upper bound on configured basestations. Index-version encoding reserves
/// six bits for the issuing sink's rank (see `docs/FAULTS.md`).
pub const MAX_SINKS: usize = 64;

/// Policy axis: which storage scheme runs and its protocol parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Which storage policy the network runs.
    pub kind: StoragePolicy,
    /// Scoop protocol parameters (ignored by the other policies).
    pub scoop: ScoopParams,
    /// The basestation role: the node ids running a sink (statistics,
    /// remapping, queries). Empty — the default, and the only mode the paper
    /// evaluates — means the classic single sink, node 0. A non-empty list
    /// must include node 0 and may promote sensor ids to additional sinks;
    /// attribute ownership is then hash-partitioned across the live sinks
    /// (see `docs/FAULTS.md`).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub basestations: Vec<NodeId>,
}

impl PolicySpec {
    /// SCOOP with the paper's protocol parameters.
    pub fn paper_defaults() -> Self {
        PolicySpec {
            kind: StoragePolicy::Scoop,
            scoop: ScoopParams::default(),
            basestations: Vec::new(),
        }
    }

    /// The effective sink set: `[0]` in the classic single-sink mode, the
    /// configured list (ascending, deduplicated) otherwise.
    pub fn sink_ids(&self) -> Vec<NodeId> {
        if self.basestations.is_empty() {
            return vec![NodeId::BASESTATION];
        }
        let mut sinks = self.basestations.clone();
        sinks.sort();
        sinks.dedup();
        sinks
    }

    /// Whether more than one basestation is configured.
    pub fn is_multi_sink(&self) -> bool {
        self.sink_ids().len() > 1
    }
}

impl Default for PolicySpec {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// One scheduled radio-outage window.
///
/// Affected nodes keep their CPU state (timers still fire) but neither
/// transmit nor receive while the window is open — the radio-level model of
/// node death, and of churn when the window closes before the run ends.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Offset from simulation start at which the outage begins.
    pub start: SimDuration,
    /// Offset from simulation start at which the outage ends (exclusive).
    pub end: SimDuration,
    /// Fraction of sensor nodes affected, chosen deterministically from the
    /// run seed. Ignored when `nodes` is non-empty.
    pub fraction: f64,
    /// Explicit node ids to affect instead of a seeded sample. The
    /// basestation (node 0) is never affected.
    pub nodes: Vec<u16>,
}

impl FaultWindow {
    /// A window killing a seeded `fraction` of sensors between `start` and
    /// `end` (seconds from simulation start).
    pub fn blackout(start_secs: u64, end_secs: u64, fraction: f64) -> Self {
        FaultWindow {
            start: SimDuration::from_secs(start_secs),
            end: SimDuration::from_secs(end_secs),
            fraction,
            nodes: Vec::new(),
        }
    }
}

/// One scheduled network partition: for the window, no link delivers across
/// the cut, in either direction. Nodes on the same side keep communicating.
///
/// The isolated side is either an explicit id set or a seeded `fraction` of
/// sensors; every other node (always including the basestation unless it is
/// listed explicitly) forms the other side.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Offset from simulation start at which the cut opens.
    pub start: SimDuration,
    /// Offset from simulation start at which the cut heals (exclusive).
    pub end: SimDuration,
    /// Fraction of sensor nodes on the isolated side, chosen
    /// deterministically from the run seed. Ignored when `nodes` is
    /// non-empty.
    pub fraction: f64,
    /// Explicit node ids forming the isolated side instead of a seeded
    /// sample.
    pub nodes: Vec<u16>,
}

impl PartitionWindow {
    /// A partition isolating a seeded `fraction` of sensors between
    /// `start_secs` and `end_secs`.
    pub fn seeded(start_secs: u64, end_secs: u64, fraction: f64) -> Self {
        PartitionWindow {
            start: SimDuration::from_secs(start_secs),
            end: SimDuration::from_secs(end_secs),
            fraction,
            nodes: Vec::new(),
        }
    }
}

/// One scheduled basestation (sink) crash-restart window: the sink's CPU
/// halts — no dispatching, remapping, or query issuing — and its radio is
/// off. Timers elsewhere keep firing; the sink's own pending timers are
/// deferred to the window end, so a restarted sink resumes its periodic
/// duties with state intact.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SinkOutage {
    /// Offset from simulation start at which the sink dies.
    pub start: SimDuration,
    /// Offset from simulation start at which the sink restarts (exclusive).
    pub end: SimDuration,
    /// Which sink dies. Must be one of the configured basestations.
    pub sink: NodeId,
}

impl SinkOutage {
    /// A crash-restart of `sink` between `start_secs` and `end_secs`.
    pub fn new(start_secs: u64, end_secs: u64, sink: u16) -> Self {
        SinkOutage {
            start: SimDuration::from_secs(start_secs),
            end: SimDuration::from_secs(end_secs),
            sink: NodeId(sink),
        }
    }
}

/// One mass-churn event: at `at`, a seeded `kill_fraction` of the original
/// sensors dies permanently while `join_fraction` (of the original sensor
/// count) fresh nodes wake at seeded positions and join the network from
/// scratch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Offset from simulation start at which the churn happens.
    pub at: SimDuration,
    /// Fraction of the original sensors that dies permanently (seeded
    /// sample; the basestations survive).
    pub kill_fraction: f64,
    /// Fresh joining nodes as a fraction of the original sensor count; they
    /// are placed by the topology generator and stay dormant until `at`.
    pub join_fraction: f64,
}

impl ChurnEvent {
    /// A churn event at `at_secs` killing `kill_fraction` and joining
    /// `join_fraction` of the original sensor count.
    pub fn new(at_secs: u64, kill_fraction: f64, join_fraction: f64) -> Self {
        ChurnEvent {
            at: SimDuration::from_secs(at_secs),
            kill_fraction,
            join_fraction,
        }
    }

    /// Number of fresh nodes this event adds for an original sensor count.
    pub fn join_count(&self, num_nodes: usize) -> usize {
        (self.join_fraction * num_nodes as f64).round() as usize
    }
}

/// Fault axis: scheduled radio outages, partitions, sink crashes, and mass
/// churn.
///
/// The default is no faults, which is byte-identical to the pre-redesign
/// behavior; every new kind defaults to empty and is skipped during
/// serialization, so existing specs, config hashes, and committed artifacts
/// are untouched until a scenario schedules one.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The radio-outage windows, applied independently.
    pub windows: Vec<FaultWindow>,
    /// Scheduled network partitions.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled basestation crash-restart windows.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub sink_outages: Vec<SinkOutage>,
    /// Scheduled mass-churn events.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub churn: Vec<ChurnEvent>,
}

impl FaultSpec {
    /// No faults.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Whether any fault of any kind is scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
            && self.partitions.is_empty()
            && self.sink_outages.is_empty()
            && self.churn.is_empty()
    }

    /// Total fresh nodes the churn schedule adds for an original sensor
    /// count (they enlarge the generated topology).
    pub fn total_joins(&self, num_nodes: usize) -> usize {
        self.churn.iter().map(|c| c.join_count(num_nodes)).sum()
    }

    /// Validates every scheduled fault.
    pub fn validate(&self) -> Result<(), ScoopError> {
        for w in &self.windows {
            if w.start >= w.end {
                return Err(ScoopError::InvalidConfig(
                    "fault window must start before it ends".into(),
                ));
            }
            if !(0.0..=1.0).contains(&w.fraction) {
                return Err(ScoopError::InvalidConfig(
                    "fault window fraction must be in [0, 1]".into(),
                ));
            }
        }
        for p in &self.partitions {
            if p.start >= p.end {
                return Err(ScoopError::InvalidConfig(
                    "partition window must start before it ends".into(),
                ));
            }
            if !(0.0..=1.0).contains(&p.fraction) {
                return Err(ScoopError::InvalidConfig(
                    "partition fraction must be in [0, 1]".into(),
                ));
            }
            let mut seen = p.nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != p.nodes.len() {
                return Err(ScoopError::InvalidConfig(
                    "partition node set must not contain duplicates".into(),
                ));
            }
        }
        for s in &self.sink_outages {
            if s.start >= s.end {
                return Err(ScoopError::InvalidConfig(
                    "sink outage must start before it ends".into(),
                ));
            }
        }
        for c in &self.churn {
            if !(0.0..=1.0).contains(&c.kill_fraction) {
                return Err(ScoopError::InvalidConfig(
                    "churn kill_fraction must be in [0, 1]".into(),
                ));
            }
            if !(0.0..=1.0).contains(&c.join_fraction) {
                return Err(ScoopError::InvalidConfig(
                    "churn join_fraction must be in [0, 1]".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Full description of one experiment run, as composable components.
///
/// The legacy name [`ExperimentConfig`](crate::ExperimentConfig) is an alias
/// of this type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Number of sensor nodes, excluding the basestation (paper: 62).
    pub num_nodes: usize,
    /// Total simulated duration (paper: 40 minutes).
    pub duration: SimDuration,
    /// Stabilization prefix during which only the routing tree forms
    /// (paper: 10 minutes).
    pub warmup: SimDuration,
    /// Node-placement axis.
    pub topology: TopologySpec,
    /// Link-loss axis.
    pub link: LinkSpec,
    /// Workload axis (data source, sampling, query distribution).
    pub workload: WorkloadSpec,
    /// Storage-policy axis.
    pub policy: PolicySpec,
    /// Fault axis (scheduled node death / churn windows).
    pub faults: FaultSpec,
    /// Seed for all randomness in the run (topology noise, link loss, data
    /// sources, query generation, fault sampling). Two runs with the same
    /// spec produce identical results.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The default parameters from Section 6 of the paper.
    pub fn paper_defaults() -> Self {
        ScenarioSpec {
            num_nodes: 62,
            duration: SimDuration::from_mins(40),
            warmup: SimDuration::from_mins(10),
            topology: TopologySpec::office_floor(),
            link: LinkSpec::paper_defaults(),
            workload: WorkloadSpec::paper_defaults(),
            policy: PolicySpec::paper_defaults(),
            faults: FaultSpec::none(),
            seed: 1,
        }
    }

    /// A scaled-down configuration useful for unit and integration tests:
    /// fewer nodes and a shorter run so tests finish quickly while still
    /// exercising every protocol phase (tree formation, summaries, at least
    /// two remaps, queries).
    pub fn small_test() -> Self {
        let mut spec = Self::paper_defaults();
        spec.num_nodes = 16;
        spec.duration = SimDuration::from_mins(12);
        spec.warmup = SimDuration::from_mins(2);
        spec.policy.scoop.summary_interval = SimDuration::from_secs(60);
        spec.policy.scoop.remap_interval = SimDuration::from_secs(120);
        spec
    }

    /// Validates internal consistency (node count within the bitmap limit,
    /// warmup shorter than the run, sane fractions, non-zero intervals) and
    /// every component spec.
    pub fn validate(&self) -> Result<(), ScoopError> {
        let total = self.num_nodes + self.faults.total_joins(self.num_nodes) + 1;
        if total > MAX_NODES {
            return Err(ScoopError::TooManyNodes {
                requested: total,
                limit: MAX_NODES,
            });
        }
        if self.num_nodes == 0 {
            return Err(ScoopError::InvalidConfig("num_nodes must be >= 1".into()));
        }
        if self.warmup >= self.duration {
            return Err(ScoopError::InvalidConfig(
                "warmup must be shorter than the total duration".into(),
            ));
        }
        if self.workload.sample_interval.as_millis() == 0 {
            return Err(ScoopError::InvalidConfig(
                "sample_interval must be non-zero".into(),
            ));
        }
        if self.workload.queries.query_interval.as_millis() == 0 {
            return Err(ScoopError::InvalidConfig(
                "query_interval must be non-zero".into(),
            ));
        }
        if self.policy.scoop.n_bins == 0 {
            return Err(ScoopError::InvalidConfig("n_bins must be >= 1".into()));
        }
        if self.policy.scoop.batch_size == 0 {
            return Err(ScoopError::InvalidConfig("batch_size must be >= 1".into()));
        }
        let q = &self.workload.queries;
        if !(0.0..=1.0).contains(&q.min_width_frac)
            || !(0.0..=1.0).contains(&q.max_width_frac)
            || q.min_width_frac > q.max_width_frac
        {
            return Err(ScoopError::InvalidConfig(
                "query width fractions must satisfy 0 <= min <= max <= 1".into(),
            ));
        }
        if self.workload.value_domain.width() < 2 {
            return Err(ScoopError::InvalidConfig(
                "value domain must contain at least two values".into(),
            ));
        }
        match self.workload.kind {
            WorkloadKind::Point => {}
            WorkloadKind::Range(range) => {
                // NaN fails both comparisons and lands in the error arm.
                if !(range.width_frac > 0.0 && range.width_frac <= 1.0) {
                    return Err(ScoopError::InvalidConfig(
                        "range workload width_frac must be in (0, 1]".into(),
                    ));
                }
            }
            WorkloadKind::Aggregate(agg) => {
                if !(agg.epsilon > 0.0 && agg.epsilon <= 0.5) {
                    return Err(ScoopError::InvalidConfig(
                        "aggregate workload epsilon must be in (0, 0.5]".into(),
                    ));
                }
                if let AggregateOp::Quantile(q) = agg.op {
                    if !(q > 0.0 && q < 1.0) {
                        return Err(ScoopError::InvalidConfig(
                            "quantile q must be in (0, 1)".into(),
                        ));
                    }
                }
            }
        }
        if !self.policy.basestations.is_empty() {
            if self.policy.kind != StoragePolicy::Scoop {
                return Err(ScoopError::InvalidConfig(
                    "multi-basestation federation requires the scoop policy".into(),
                ));
            }
            let sinks = self.policy.sink_ids();
            if sinks.len() != self.policy.basestations.len() {
                return Err(ScoopError::InvalidConfig(
                    "basestations must not contain duplicates".into(),
                ));
            }
            if !sinks.contains(&NodeId::BASESTATION) {
                return Err(ScoopError::InvalidConfig(
                    "basestations must include node 0 (the root sink)".into(),
                ));
            }
            if sinks.len() > MAX_SINKS {
                return Err(ScoopError::InvalidConfig(format!(
                    "at most {MAX_SINKS} basestations are supported"
                )));
            }
            if let Some(bad) = sinks.iter().find(|s| s.0 as usize > self.num_nodes) {
                return Err(ScoopError::InvalidConfig(format!(
                    "basestation id {} exceeds the node count {}",
                    bad.0, self.num_nodes
                )));
            }
        }
        for outage in &self.faults.sink_outages {
            if !self.policy.sink_ids().contains(&outage.sink) {
                return Err(ScoopError::InvalidConfig(format!(
                    "sink outage targets node {}, which is not a basestation",
                    outage.sink.0
                )));
            }
        }
        self.topology.validate()?;
        self.link.validate()?;
        self.faults.validate()?;
        Ok(())
    }

    /// Duration of the measured part of the run (after warmup).
    pub fn measured_duration(&self) -> SimDuration {
        SimDuration(self.duration.0.saturating_sub(self.warmup.0))
    }

    /// Number of sensor samples each node takes during the measured part of
    /// the run.
    pub fn samples_per_node(&self) -> u64 {
        self.measured_duration().as_millis() / self.workload.sample_interval.as_millis()
    }

    /// Number of queries the basestation issues during the measured part of
    /// the run.
    pub fn query_count(&self) -> u64 {
        self.measured_duration().as_millis() / self.workload.queries.query_interval.as_millis()
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Documentation entry for one registry axis.
#[derive(Clone, Copy, Debug)]
pub struct AxisDoc {
    /// The registry key (as typed after `--set`).
    pub key: &'static str,
    /// Expected value and meaning.
    pub doc: &'static str,
}

/// Every axis the string-keyed registry understands, in help order.
///
/// [`ScenarioSpec::set_axis`] and this table are kept in lockstep by a unit
/// test that applies a sample value for every listed key.
pub const AXES: &[AxisDoc] = &[
    AxisDoc {
        key: "nodes",
        doc: "sensor count, excluding the basestation (1..=MAX_NODES-1)",
    },
    AxisDoc {
        key: "seed",
        doc: "base seed for all randomness (u64)",
    },
    AxisDoc {
        key: "duration_secs",
        doc: "total simulated seconds",
    },
    AxisDoc {
        key: "warmup_secs",
        doc: "stabilization prefix in seconds",
    },
    AxisDoc {
        key: "policy",
        doc: "storage policy: scoop|local|base|hash",
    },
    AxisDoc {
        key: "source",
        doc: "data source: real|unique|equal|random|gaussian",
    },
    AxisDoc {
        key: "sample_interval_secs",
        doc: "seconds between sensor samples",
    },
    AxisDoc {
        key: "query.interval_secs",
        doc: "seconds between basestation queries",
    },
    AxisDoc {
        key: "query.min_width",
        doc: "minimum query width as a domain fraction [0,1]",
    },
    AxisDoc {
        key: "query.max_width",
        doc: "maximum query width as a domain fraction [0,1]",
    },
    AxisDoc {
        key: "query.history_samples",
        doc: "how many sample intervals queries look back",
    },
    AxisDoc {
        key: "topology",
        doc: "placement family: office|grid|random|linear",
    },
    AxisDoc {
        key: "topology.area_per_node",
        doc: "square meters per node (office/random)",
    },
    AxisDoc {
        key: "topology.jitter",
        doc: "office-floor cell jitter fraction [0,0.5)",
    },
    AxisDoc {
        key: "topology.spacing",
        doc: "meters between adjacent nodes (grid/linear)",
    },
    AxisDoc {
        key: "topology.range_factor",
        doc: "radio-range multiplier (>0)",
    },
    AxisDoc {
        key: "link",
        doc: "loss-model family or preset: distance|perfect|calibrated|legacy \
              (presets also set the four knobs)",
    },
    AxisDoc {
        key: "link.loss_floor",
        doc: "loss of the best link [0,1); delivery at d=0 is 1-floor",
    },
    AxisDoc {
        key: "link.edge_delivery",
        doc: "delivery probability at the radio-range edge (0,1]",
    },
    AxisDoc {
        key: "link.distance_exponent",
        doc: "decay shape (d/range)^k; 1 = linear (>0)",
    },
    AxisDoc {
        key: "link.asymmetry_noise",
        doc: "per-direction delivery noise stddev (>=0)",
    },
    AxisDoc {
        key: "scoop.summary_interval_secs",
        doc: "seconds between node summaries",
    },
    AxisDoc {
        key: "scoop.remap_interval_secs",
        doc: "seconds between index recomputations",
    },
    AxisDoc {
        key: "scoop.n_bins",
        doc: "summary histogram bins (>=1)",
    },
    AxisDoc {
        key: "scoop.batch_size",
        doc: "max readings per data packet (>=1)",
    },
    AxisDoc {
        key: "scoop.suppress_unchanged_index",
        doc: "true|false: skip re-disseminating unchanged indices",
    },
    AxisDoc {
        key: "scoop.neighbor_shortcut",
        doc: "true|false: enable routing rule 3",
    },
    AxisDoc {
        key: "fault.window",
        doc: "append an outage window: START..END@FRACTION (secs, e.g. 600..900@0.1)",
    },
    AxisDoc {
        key: "fault.partition",
        doc: "append a partition: START..END@FRACTION or START..END@nodes:1,2 (secs)",
    },
    AxisDoc {
        key: "fault.sink_down",
        doc: "append a sink crash-restart: START..END@SINK_ID (secs)",
    },
    AxisDoc {
        key: "fault.churn",
        doc: "append mass churn: AT@KILL_FRAC/JOIN_FRAC (secs; /JOIN_FRAC optional)",
    },
    AxisDoc {
        key: "fault.clear",
        doc: "any value: remove all scheduled faults (every kind)",
    },
    AxisDoc {
        key: "policy.basestations",
        doc: "comma-separated sink node ids (must include 0); empty = classic single sink",
    },
    AxisDoc {
        key: "scoop.failover_timeout_secs",
        doc: "silence before a sink's range is taken over (0 = 3x remap interval)",
    },
    AxisDoc {
        key: "workload.kind",
        doc: "query shape: point|range|aggregate",
    },
    AxisDoc {
        key: "workload.range_width",
        doc: "range query width as a domain fraction (0,1]; implies kind=range",
    },
    AxisDoc {
        key: "workload.agg_op",
        doc: "aggregate operator: min|max|avg|quantile:Q; implies kind=aggregate",
    },
    AxisDoc {
        key: "workload.epsilon",
        doc: "quantile rank-error budget (0,0.5]; implies kind=aggregate",
    },
];

/// A one-key-per-line help listing of every axis.
pub fn axis_help() -> String {
    let width = AXES.iter().map(|a| a.key.len()).max().unwrap_or(0);
    AXES.iter()
        .map(|a| format!("  {:width$}  {}", a.key, a.doc))
        .collect::<Vec<_>>()
        .join("\n")
}

fn bad_value(key: &str, value: &str, expect: &str) -> ScoopError {
    ScoopError::InvalidConfig(format!(
        "axis `{key}`: bad value `{value}` (expected {expect})"
    ))
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str, expect: &str) -> Result<T, ScoopError> {
    value.parse().map_err(|_| bad_value(key, value, expect))
}

fn parse_bool(key: &str, value: &str) -> Result<bool, ScoopError> {
    match value {
        "true" | "1" | "yes" | "on" => Ok(true),
        "false" | "0" | "no" | "off" => Ok(false),
        _ => Err(bad_value(key, value, "true|false")),
    }
}

/// Parses `START..END@FRACTION` (seconds) or `START..END@nodes:1,2,3`.
fn parse_fault_window(key: &str, value: &str) -> Result<FaultWindow, ScoopError> {
    let expect = "START..END@FRACTION or START..END@nodes:1,2 (seconds)";
    let (range, tail) = value
        .split_once('@')
        .ok_or_else(|| bad_value(key, value, expect))?;
    let (start, end) = range
        .split_once("..")
        .ok_or_else(|| bad_value(key, value, expect))?;
    let start: u64 = parse_num(key, start, expect)?;
    let end: u64 = parse_num(key, end, expect)?;
    let mut window = FaultWindow::blackout(start, end, 0.0);
    if let Some(list) = tail.strip_prefix("nodes:") {
        for id in list.split(',') {
            window.nodes.push(parse_num(key, id, expect)?);
        }
    } else {
        window.fraction = parse_num(key, tail, expect)?;
    }
    Ok(window)
}

/// Parses `START..END@FRACTION` (seconds) or `START..END@nodes:1,2,3` into a
/// partition window (same grammar as `fault.window`, different fault).
fn parse_partition(key: &str, value: &str) -> Result<PartitionWindow, ScoopError> {
    let w = parse_fault_window(key, value)?;
    Ok(PartitionWindow {
        start: w.start,
        end: w.end,
        fraction: w.fraction,
        nodes: w.nodes,
    })
}

/// Parses `START..END@SINK_ID` (seconds).
fn parse_sink_outage(key: &str, value: &str) -> Result<SinkOutage, ScoopError> {
    let expect = "START..END@SINK_ID (seconds)";
    let (range, sink) = value
        .split_once('@')
        .ok_or_else(|| bad_value(key, value, expect))?;
    let (start, end) = range
        .split_once("..")
        .ok_or_else(|| bad_value(key, value, expect))?;
    Ok(SinkOutage::new(
        parse_num(key, start, expect)?,
        parse_num(key, end, expect)?,
        parse_num(key, sink, expect)?,
    ))
}

/// Parses `AT@KILL_FRAC/JOIN_FRAC` (seconds; `/JOIN_FRAC` optional).
fn parse_churn(key: &str, value: &str) -> Result<ChurnEvent, ScoopError> {
    let expect = "AT@KILL_FRAC/JOIN_FRAC (seconds; /JOIN_FRAC optional)";
    let (at, tail) = value
        .split_once('@')
        .ok_or_else(|| bad_value(key, value, expect))?;
    let (kill, join) = match tail.split_once('/') {
        Some((k, j)) => (k, Some(j)),
        None => (tail, None),
    };
    Ok(ChurnEvent::new(
        parse_num(key, at, expect)?,
        parse_num(key, kill, expect)?,
        match join {
            Some(j) => parse_num(key, j, expect)?,
            None => 0.0,
        },
    ))
}

/// Parses a comma-separated sink id list (empty string clears the role).
fn parse_basestations(key: &str, value: &str) -> Result<Vec<NodeId>, ScoopError> {
    let expect = "comma-separated node ids, e.g. 0,5,9 (empty clears)";
    if value.trim().is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|id| parse_num::<u16>(key, id.trim(), expect).map(NodeId))
        .collect()
}

impl ScenarioSpec {
    /// Applies one string-keyed axis override (see [`AXES`] for the
    /// vocabulary). Unknown keys fail with an error that lists every valid
    /// axis; bad values name the expected form. The spec is *not* validated
    /// here — call [`ScenarioSpec::validate`] (or run the spec) after the
    /// last override so interdependent axes can be set in any order.
    pub fn set_axis(&mut self, key: &str, value: &str) -> Result<(), ScoopError> {
        match key {
            "nodes" => self.num_nodes = parse_num(key, value, "a node count")?,
            "seed" => self.seed = parse_num(key, value, "an unsigned seed")?,
            "duration_secs" => {
                self.duration = SimDuration::from_secs(parse_num(key, value, "seconds")?)
            }
            "warmup_secs" => {
                self.warmup = SimDuration::from_secs(parse_num(key, value, "seconds")?)
            }
            "policy" => {
                self.policy.kind = StoragePolicy::ALL
                    .into_iter()
                    .find(|p| p.name() == value)
                    .ok_or_else(|| bad_value(key, value, "scoop|local|base|hash"))?
            }
            "source" => {
                self.workload.data_source = DataSourceKind::ALL
                    .into_iter()
                    .find(|s| s.name() == value)
                    .ok_or_else(|| bad_value(key, value, "real|unique|equal|random|gaussian"))?
            }
            "sample_interval_secs" => {
                self.workload.sample_interval =
                    SimDuration::from_secs(parse_num(key, value, "seconds")?)
            }
            "query.interval_secs" => {
                self.workload.queries.query_interval =
                    SimDuration::from_secs(parse_num(key, value, "seconds")?)
            }
            "query.min_width" => {
                self.workload.queries.min_width_frac = parse_num(key, value, "a fraction")?
            }
            "query.max_width" => {
                self.workload.queries.max_width_frac = parse_num(key, value, "a fraction")?
            }
            "query.history_samples" => {
                self.workload.queries.history_samples = parse_num(key, value, "a count")?
            }
            "topology" => {
                self.topology.kind = TopologyKind::from_name(value)
                    .ok_or_else(|| bad_value(key, value, "office|grid|random|linear"))?
            }
            "topology.area_per_node" => {
                self.topology.area_per_node = parse_num(key, value, "square meters")?
            }
            "topology.jitter" => self.topology.jitter = parse_num(key, value, "a fraction")?,
            "topology.spacing" => self.topology.spacing = parse_num(key, value, "meters")?,
            "topology.range_factor" => {
                self.topology.range_factor = parse_num(key, value, "a multiplier")?
            }
            // `link` accepts either a bare family (keeps the current knobs)
            // or a named preset that pins family *and* knobs: `calibrated`
            // is the shipped default, `legacy` the pre-calibration model —
            // the handle the byte-identity equivalence tests address the old
            // behavior by.
            "link" => match value {
                "calibrated" => self.link = LinkSpec::calibrated(),
                "legacy" => self.link = LinkSpec::legacy(),
                family => {
                    self.link.family = LinkFamily::from_name(family).ok_or_else(|| {
                        bad_value(key, value, "distance|perfect|calibrated|legacy")
                    })?
                }
            },
            "link.loss_floor" => self.link.loss_floor = parse_num(key, value, "a probability")?,
            "link.edge_delivery" => {
                self.link.edge_delivery = parse_num(key, value, "a probability")?
            }
            "link.distance_exponent" => {
                self.link.distance_exponent = parse_num(key, value, "an exponent")?
            }
            "link.asymmetry_noise" => {
                self.link.asymmetry_noise = parse_num(key, value, "a stddev")?
            }
            "scoop.summary_interval_secs" => {
                self.policy.scoop.summary_interval =
                    SimDuration::from_secs(parse_num(key, value, "seconds")?)
            }
            "scoop.remap_interval_secs" => {
                self.policy.scoop.remap_interval =
                    SimDuration::from_secs(parse_num(key, value, "seconds")?)
            }
            "scoop.n_bins" => self.policy.scoop.n_bins = parse_num(key, value, "a count")?,
            "scoop.batch_size" => self.policy.scoop.batch_size = parse_num(key, value, "a count")?,
            "scoop.suppress_unchanged_index" => {
                self.policy.scoop.suppress_unchanged_index = parse_bool(key, value)?
            }
            "scoop.neighbor_shortcut" => {
                self.policy.scoop.neighbor_shortcut = parse_bool(key, value)?
            }
            "fault.window" => self.faults.windows.push(parse_fault_window(key, value)?),
            "fault.partition" => self.faults.partitions.push(parse_partition(key, value)?),
            "fault.sink_down" => self
                .faults
                .sink_outages
                .push(parse_sink_outage(key, value)?),
            "fault.churn" => self.faults.churn.push(parse_churn(key, value)?),
            "fault.clear" => self.faults = FaultSpec::none(),
            "policy.basestations" => self.policy.basestations = parse_basestations(key, value)?,
            "scoop.failover_timeout_secs" => {
                self.policy.scoop.failover_timeout =
                    SimDuration::from_secs(parse_num(key, value, "seconds")?)
            }
            // The workload-kind axes compose in any order: knob axes flip the
            // kind and keep the other knob's current (or default) value, so
            // `workload.agg_op=quantile:0.9 workload.epsilon=0.02` works
            // regardless of ordering. Validation of the knobs themselves
            // happens in `validate`, like every other axis.
            "workload.kind" => {
                self.workload.kind = match value {
                    "point" => WorkloadKind::Point,
                    "range" => match self.workload.kind {
                        k @ WorkloadKind::Range(_) => k,
                        _ => WorkloadKind::range(WorkloadKind::DEFAULT_RANGE_WIDTH),
                    },
                    "aggregate" => match self.workload.kind {
                        k @ WorkloadKind::Aggregate(_) => k,
                        _ => {
                            WorkloadKind::aggregate(AggregateOp::Avg, WorkloadKind::DEFAULT_EPSILON)
                        }
                    },
                    _ => return Err(bad_value(key, value, "point|range|aggregate")),
                }
            }
            "workload.range_width" => {
                self.workload.kind =
                    WorkloadKind::range(parse_num(key, value, "a fraction in (0, 1]")?)
            }
            "workload.agg_op" => {
                let op = AggregateOp::parse(value)
                    .ok_or_else(|| bad_value(key, value, "min|max|avg|quantile:Q"))?;
                let epsilon = match self.workload.kind {
                    WorkloadKind::Aggregate(agg) => agg.epsilon,
                    _ => WorkloadKind::DEFAULT_EPSILON,
                };
                self.workload.kind = WorkloadKind::aggregate(op, epsilon);
            }
            "workload.epsilon" => {
                let epsilon = parse_num(key, value, "a fraction in (0, 0.5]")?;
                let op = match self.workload.kind {
                    WorkloadKind::Aggregate(agg) => agg.op,
                    _ => AggregateOp::Avg,
                };
                self.workload.kind = WorkloadKind::aggregate(op, epsilon);
            }
            unknown => {
                return Err(ScoopError::InvalidConfig(format!(
                    "unknown axis `{unknown}`; valid axes:\n{}",
                    axis_help()
                )))
            }
        }
        Ok(())
    }

    /// Applies a sequence of `(key, value)` overrides in order, stopping at
    /// the first error.
    pub fn apply_axes<K, V>(
        &mut self,
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Result<(), ScoopError>
    where
        K: AsRef<str>,
        V: AsRef<str>,
    {
        for (key, value) in pairs {
            self.set_axis(key.as_ref(), value.as_ref())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6() {
        let spec = ScenarioSpec::paper_defaults();
        assert_eq!(spec.num_nodes, 62);
        assert_eq!(spec.duration.as_secs(), 40 * 60);
        assert_eq!(spec.warmup.as_secs(), 10 * 60);
        assert_eq!(spec.workload.sample_interval.as_secs(), 15);
        assert_eq!(spec.workload.queries.query_interval.as_secs(), 15);
        assert_eq!(spec.policy.scoop.summary_interval.as_secs(), 110);
        assert_eq!(spec.policy.scoop.remap_interval.as_secs(), 240);
        assert_eq!(spec.topology.kind, TopologyKind::OfficeFloor);
        assert_eq!(spec.link.family, LinkFamily::DistanceDecay);
        assert_eq!(spec.link, LinkSpec::calibrated());
        assert!((spec.link.max_delivery() - 0.90).abs() < 1e-12);
        assert!(spec.faults.is_empty());
        assert_eq!(spec.workload.data_source, DataSourceKind::Real);
        assert_eq!(spec.policy.kind, StoragePolicy::Scoop);
        spec.validate().expect("paper defaults must be valid");
    }

    #[test]
    fn small_test_spec_is_valid() {
        ScenarioSpec::small_test().validate().unwrap();
    }

    #[test]
    fn validation_rejects_too_many_nodes() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.num_nodes = MAX_NODES; // +1 for the basestation exceeds the cap
        assert!(matches!(
            spec.validate(),
            Err(ScoopError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_warmup() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.warmup = spec.duration;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_query_widths() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.workload.queries.min_width_frac = 0.5;
        spec.workload.queries.max_width_frac = 0.1;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_nodes_bins_and_intervals() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.num_nodes = 0;
        assert!(spec.validate().is_err());

        let mut spec = ScenarioSpec::paper_defaults();
        spec.policy.scoop.n_bins = 0;
        assert!(spec.validate().is_err());

        let mut spec = ScenarioSpec::paper_defaults();
        spec.policy.scoop.batch_size = 0;
        assert!(spec.validate().is_err());

        let mut spec = ScenarioSpec::paper_defaults();
        spec.workload.sample_interval = SimDuration::ZERO;
        assert!(spec.validate().is_err());

        let mut spec = ScenarioSpec::paper_defaults();
        spec.workload.queries.query_interval = SimDuration::ZERO;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_component_specs() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.link.loss_floor = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = ScenarioSpec::paper_defaults();
        spec.topology.spacing = 0.0;
        assert!(spec.validate().is_err());

        let mut spec = ScenarioSpec::paper_defaults();
        spec.faults
            .windows
            .push(FaultWindow::blackout(900, 600, 0.1));
        assert!(spec.validate().is_err());

        let mut spec = ScenarioSpec::paper_defaults();
        spec.faults
            .windows
            .push(FaultWindow::blackout(600, 900, 1.5));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn derived_counts() {
        let spec = ScenarioSpec::paper_defaults();
        // 30 measured minutes at one sample / query per 15 s = 120 each.
        assert_eq!(spec.samples_per_node(), 120);
        assert_eq!(spec.query_count(), 120);
    }

    #[test]
    fn spec_serde_roundtrip() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.faults
            .windows
            .push(FaultWindow::blackout(600, 900, 0.1));
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn every_documented_axis_is_settable() {
        // A sample value for each key in AXES; keeps the doc table and the
        // set_axis match in lockstep.
        let sample = |key: &str| -> &'static str {
            match key {
                "policy" => "local",
                "source" => "gaussian",
                "topology" => "grid",
                "link" => "perfect",
                "scoop.suppress_unchanged_index" | "scoop.neighbor_shortcut" => "false",
                "fault.window" => "600..900@0.1",
                "fault.partition" => "600..900@0.5",
                "fault.sink_down" => "600..900@0",
                "fault.churn" => "600@0.25/0.25",
                "fault.clear" => "1",
                "policy.basestations" => "0,5",
                "workload.kind" => "range",
                "workload.agg_op" => "quantile:0.5",
                "query.min_width"
                | "query.max_width"
                | "topology.jitter"
                | "workload.range_width" => "0.2",
                "link.loss_floor"
                | "link.edge_delivery"
                | "link.asymmetry_noise"
                | "workload.epsilon" => "0.1",
                "topology.range_factor" | "link.distance_exponent" => "1.5",
                "topology.area_per_node" | "topology.spacing" => "12.5",
                _ => "30",
            }
        };
        for axis in AXES {
            let mut spec = ScenarioSpec::paper_defaults();
            spec.set_axis(axis.key, sample(axis.key))
                .unwrap_or_else(|e| panic!("axis {} rejected its sample: {e}", axis.key));
        }
    }

    #[test]
    fn acceptance_override_chain_produces_a_valid_spec() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.apply_axes([
            ("topology", "grid"),
            ("nodes", "96"),
            ("link.loss_floor", "0.05"),
        ])
        .unwrap();
        assert_eq!(spec.topology.kind, TopologyKind::Grid);
        assert_eq!(spec.num_nodes, 96);
        assert!((spec.link.loss_floor - 0.05).abs() < 1e-12);
        spec.validate().unwrap();
    }

    #[test]
    fn unknown_axis_lists_the_vocabulary() {
        let mut spec = ScenarioSpec::paper_defaults();
        let err = spec.set_axis("topologee", "grid").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown axis `topologee`"), "{msg}");
        assert!(msg.contains("link.loss_floor"), "{msg}");
        assert!(msg.contains("fault.window"), "{msg}");
    }

    #[test]
    fn bad_axis_values_are_rejected_with_expectations() {
        let mut spec = ScenarioSpec::paper_defaults();
        assert!(spec.set_axis("nodes", "lots").is_err());
        assert!(spec.set_axis("policy", "ghost").is_err());
        assert!(spec.set_axis("fault.window", "900@0.1").is_err());
        assert!(spec.set_axis("scoop.neighbor_shortcut", "maybe").is_err());
    }

    #[test]
    fn fault_window_axis_parses_both_forms() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.set_axis("fault.window", "600..900@0.25").unwrap();
        spec.set_axis("fault.window", "100..200@nodes:3,7").unwrap();
        assert_eq!(spec.faults.windows.len(), 2);
        assert!((spec.faults.windows[0].fraction - 0.25).abs() < 1e-12);
        assert_eq!(spec.faults.windows[1].nodes, vec![3, 7]);
        spec.set_axis("fault.clear", "1").unwrap();
        assert!(spec.faults.is_empty());
    }

    #[test]
    fn adversarial_fault_axes_parse_and_clear() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.set_axis("fault.partition", "600..900@0.5").unwrap();
        spec.set_axis("fault.partition", "100..200@nodes:3,7")
            .unwrap();
        spec.set_axis("fault.sink_down", "600..900@5").unwrap();
        spec.set_axis("fault.churn", "600@0.25/0.1").unwrap();
        spec.set_axis("fault.churn", "900@0.5").unwrap();
        assert_eq!(spec.faults.partitions.len(), 2);
        assert!((spec.faults.partitions[0].fraction - 0.5).abs() < 1e-12);
        assert_eq!(spec.faults.partitions[1].nodes, vec![3, 7]);
        assert_eq!(spec.faults.sink_outages[0].sink, NodeId(5));
        assert!((spec.faults.churn[0].join_fraction - 0.1).abs() < 1e-12);
        assert!(
            (spec.faults.churn[1].join_fraction - 0.0).abs() < 1e-12,
            "join fraction defaults to 0 when omitted"
        );
        spec.set_axis("fault.clear", "x").unwrap();
        assert!(spec.faults.is_empty());

        assert!(spec.set_axis("fault.partition", "900@0.1").is_err());
        assert!(spec.set_axis("fault.sink_down", "600..900").is_err());
        assert!(spec.set_axis("fault.churn", "600").is_err());
    }

    #[test]
    fn empty_new_fault_kinds_serialize_to_the_legacy_shape() {
        // Byte-identity of committed artifacts: a spec without the new
        // faults (or basestations) must serialize exactly as before.
        let spec = ScenarioSpec::paper_defaults();
        let json = serde_json::to_string(&spec).unwrap();
        for key in ["partitions", "sink_outages", "churn", "basestations"] {
            assert!(!json.contains(key), "`{key}` leaked into default JSON");
        }
        assert!(!json.contains("failover_timeout"));
        // The workload kind is skipped while it's the seed Point shape
        // ("kind" itself appears via the policy kind and "width_frac" via the
        // query band, so probe markers only the new enum can contribute).
        for key in ["Point", "epsilon", "Aggregate"] {
            assert!(!json.contains(key), "`{key}` leaked into default JSON");
        }
    }

    #[test]
    fn workload_kinds_roundtrip_through_serde() {
        for kind in [
            WorkloadKind::range(0.25),
            WorkloadKind::aggregate(AggregateOp::Quantile(0.9), 0.02),
            WorkloadKind::aggregate(AggregateOp::Min, 0.05),
        ] {
            let mut spec = ScenarioSpec::paper_defaults();
            spec.workload.kind = kind;
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
        // A pre-kind spec (no `kind` key) deserializes to Point.
        let legacy = serde_json::to_string(&ScenarioSpec::paper_defaults()).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.workload.kind, WorkloadKind::Point);
    }

    #[test]
    fn validation_rejects_degenerate_workload_kinds() {
        let cases: &[(WorkloadKind, &str)] = &[
            (WorkloadKind::range(0.0), "zero-width range"),
            (WorkloadKind::range(-0.5), "negative width"),
            (WorkloadKind::range(1.5), "width > 1"),
            (WorkloadKind::range(f64::NAN), "NaN width"),
            (
                WorkloadKind::aggregate(AggregateOp::Avg, 0.0),
                "zero epsilon",
            ),
            (
                WorkloadKind::aggregate(AggregateOp::Avg, 0.6),
                "epsilon > 0.5",
            ),
            (
                WorkloadKind::aggregate(AggregateOp::Avg, f64::NAN),
                "NaN epsilon",
            ),
            (
                WorkloadKind::aggregate(AggregateOp::Quantile(0.0), 0.05),
                "q = 0",
            ),
            (
                WorkloadKind::aggregate(AggregateOp::Quantile(1.0), 0.05),
                "q = 1",
            ),
            (
                WorkloadKind::aggregate(AggregateOp::Quantile(f64::NAN), 0.05),
                "NaN q",
            ),
        ];
        for (kind, what) in cases {
            let mut spec = ScenarioSpec::paper_defaults();
            spec.workload.kind = *kind;
            assert!(
                matches!(spec.validate(), Err(ScoopError::InvalidConfig(_))),
                "{what} passed validation"
            );
        }
        // The boundary values themselves are accepted.
        for kind in [
            WorkloadKind::range(1.0),
            WorkloadKind::aggregate(AggregateOp::Quantile(0.5), 0.5),
        ] {
            let mut spec = ScenarioSpec::paper_defaults();
            spec.workload.kind = kind;
            spec.validate().unwrap();
        }
    }

    #[test]
    fn workload_axes_compose_in_any_order() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.set_axis("workload.kind", "range").unwrap();
        assert_eq!(
            spec.workload.kind,
            WorkloadKind::range(WorkloadKind::DEFAULT_RANGE_WIDTH)
        );
        spec.set_axis("workload.range_width", "0.3").unwrap();
        assert_eq!(spec.workload.kind, WorkloadKind::range(0.3));
        // Setting the kind again after the width keeps the width.
        spec.set_axis("workload.kind", "range").unwrap();
        assert_eq!(spec.workload.kind, WorkloadKind::range(0.3));

        // epsilon before op, then op: epsilon survives.
        spec.set_axis("workload.epsilon", "0.02").unwrap();
        spec.set_axis("workload.agg_op", "quantile:0.9").unwrap();
        assert_eq!(
            spec.workload.kind,
            WorkloadKind::aggregate(AggregateOp::Quantile(0.9), 0.02)
        );
        spec.set_axis("workload.kind", "point").unwrap();
        assert_eq!(spec.workload.kind, WorkloadKind::Point);

        assert!(spec.set_axis("workload.kind", "median").is_err());
        assert!(spec.set_axis("workload.agg_op", "median").is_err());
        assert!(spec.set_axis("workload.range_width", "wide").is_err());
    }

    #[test]
    fn adversarial_faults_roundtrip_through_serde() {
        let mut spec = ScenarioSpec::paper_defaults();
        spec.policy.basestations = vec![NodeId(0), NodeId(5)];
        spec.faults
            .partitions
            .push(PartitionWindow::seeded(600, 900, 0.5));
        spec.faults.sink_outages.push(SinkOutage::new(600, 900, 5));
        spec.faults.churn.push(ChurnEvent::new(700, 0.25, 0.25));
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn validation_rejects_bad_adversarial_faults() {
        let cases: &[fn(&mut ScenarioSpec)] = &[
            |s| {
                s.faults
                    .partitions
                    .push(PartitionWindow::seeded(900, 600, 0.5))
            },
            |s| s.faults.partitions.push(PartitionWindow::seeded(1, 2, 1.5)),
            |s| {
                s.faults
                    .partitions
                    .push(PartitionWindow::seeded(1, 2, f64::NAN))
            },
            |s| {
                s.faults.partitions.push(PartitionWindow {
                    start: SimDuration::from_secs(1),
                    end: SimDuration::from_secs(2),
                    fraction: 0.0,
                    nodes: vec![3, 3],
                })
            },
            |s| {
                s.policy.basestations = vec![NodeId(0), NodeId(5)];
                s.faults.sink_outages.push(SinkOutage::new(900, 600, 5));
            },
            |s| s.faults.sink_outages.push(SinkOutage::new(600, 900, 5)),
            |s| s.faults.churn.push(ChurnEvent::new(600, -0.1, 0.0)),
            |s| s.faults.churn.push(ChurnEvent::new(600, 0.0, f64::NAN)),
            |s| s.policy.basestations = vec![NodeId(5), NodeId(9)],
            |s| s.policy.basestations = vec![NodeId(0), NodeId(5), NodeId(5)],
            |s| s.policy.basestations = vec![NodeId(0), NodeId(999)],
        ];
        for (i, tweak) in cases.iter().enumerate() {
            let mut spec = ScenarioSpec::small_test();
            tweak(&mut spec);
            assert!(
                matches!(
                    spec.validate(),
                    Err(ScoopError::InvalidConfig(_)) | Err(ScoopError::TooManyNodes { .. })
                ),
                "adversarial fault case {i} passed validation"
            );
        }

        // Churn joins count against the node-count headroom.
        let mut spec = ScenarioSpec::small_test();
        spec.num_nodes = MAX_NODES - 1;
        spec.faults.churn.push(ChurnEvent::new(600, 0.0, 0.5));
        assert!(matches!(
            spec.validate(),
            Err(ScoopError::TooManyNodes { .. })
        ));

        // The happy path: a valid multi-sink chaos spec.
        let mut spec = ScenarioSpec::small_test();
        spec.policy.basestations = vec![NodeId(0), NodeId(5)];
        spec.faults
            .partitions
            .push(PartitionWindow::seeded(240, 420, 0.5));
        spec.faults.sink_outages.push(SinkOutage::new(240, 420, 5));
        spec.faults.churn.push(ChurnEvent::new(300, 0.25, 0.25));
        spec.validate().unwrap();
    }

    #[test]
    fn link_presets_pin_family_and_knobs() {
        // The shipped default *is* the calibrated point.
        assert_eq!(LinkSpec::default(), LinkSpec::calibrated());
        assert_eq!(LinkSpec::paper_defaults(), LinkSpec::calibrated());
        // The legacy preset is the exact pre-calibration model.
        let legacy = LinkSpec::legacy();
        assert_eq!(legacy.family, LinkFamily::DistanceDecay);
        assert!((legacy.loss_floor - 0.22).abs() < 1e-12);
        assert!((legacy.edge_delivery - 0.10).abs() < 1e-12);
        assert!((legacy.distance_exponent - 1.0).abs() < 1e-12);
        assert!((legacy.asymmetry_noise - 0.06).abs() < 1e-12);
        legacy.validate().unwrap();
        LinkSpec::calibrated().validate().unwrap();

        // Axis presets set the whole link spec; bare families keep the knobs.
        let mut spec = ScenarioSpec::paper_defaults();
        spec.set_axis("link", "legacy").unwrap();
        assert_eq!(spec.link, LinkSpec::legacy());
        spec.set_axis("link", "calibrated").unwrap();
        assert_eq!(spec.link, LinkSpec::calibrated());
        spec.set_axis("link.loss_floor", "0.4").unwrap();
        spec.set_axis("link", "perfect").unwrap();
        assert_eq!(spec.link.family, LinkFamily::Perfect);
        assert!((spec.link.loss_floor - 0.4).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_adversarial_link_knobs() {
        let adversarial: &[fn(&mut LinkSpec)] = &[
            |l| l.loss_floor = f64::NAN,
            |l| l.loss_floor = -0.1,
            |l| l.loss_floor = f64::INFINITY,
            |l| l.edge_delivery = f64::NAN,
            |l| l.edge_delivery = 0.0,
            |l| l.edge_delivery = 1.5,
            |l| l.distance_exponent = f64::NAN,
            |l| l.distance_exponent = -2.0,
            |l| l.distance_exponent = 0.0,
            |l| l.distance_exponent = f64::INFINITY,
            |l| l.distance_exponent = LinkSpec::MAX_DISTANCE_EXPONENT * 2.0,
            |l| l.asymmetry_noise = f64::NAN,
            |l| l.asymmetry_noise = -0.01,
            |l| l.asymmetry_noise = f64::INFINITY,
        ];
        for (i, poison) in adversarial.iter().enumerate() {
            let mut link = LinkSpec::calibrated();
            poison(&mut link);
            assert!(
                matches!(link.validate(), Err(ScoopError::InvalidConfig(_))),
                "adversarial knob #{i} must be rejected with a typed error: {link:?}"
            );
        }
        // The cap itself is still accepted.
        let mut link = LinkSpec::calibrated();
        link.distance_exponent = LinkSpec::MAX_DISTANCE_EXPONENT;
        link.validate().unwrap();
    }

    #[test]
    fn topology_and_link_names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::from_name(kind.name()), Some(kind));
        }
        for family in [LinkFamily::DistanceDecay, LinkFamily::Perfect] {
            assert_eq!(LinkFamily::from_name(family.name()), Some(family));
        }
        assert_eq!(TopologyKind::from_name("donut"), None);
    }
}
