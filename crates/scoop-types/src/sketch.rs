//! Mergeable aggregates: exact min/max/avg partials and a q-digest quantile
//! sketch with a proven rank-error contract.
//!
//! The aggregate query workloads (see `docs/WORKLOADS.md`) combine per-node
//! partial results hop-by-hop up the routing tree, TAG-style. Min, max, count
//! and sum merge exactly; quantiles cannot, so the partial carries a q-digest
//! (Shrivastava et al., "Medians and Beyond"): a multiset over a bounded
//! integer domain, summarized on the complete binary tree over that domain
//! with compression factor `k = ceil(log2(sigma) / epsilon)`. Every internal
//! tree node ever holds at most `n/k` mass, an invariant preserved by insert,
//! compress, and merge, so any quantile read off the digest has rank error at
//! most `log2(sigma) * n/k <= epsilon * n` — regardless of stream order,
//! merge grouping, or how many partials were combined. The property-based
//! suite in `scoop-workload` checks exactly that contract against a sorted
//! reference over arbitrary streams and merge orders.

use crate::value::{Value, ValueRange};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The aggregate operator of an aggregate query workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AggregateOp {
    /// Smallest matching value.
    Min,
    /// Largest matching value.
    Max,
    /// Arithmetic mean of matching values.
    Avg,
    /// The `q`-quantile (`0 < q < 1`), answered from a q-digest with rank
    /// error at most `epsilon * n`.
    Quantile(f64),
}

impl AggregateOp {
    /// Stable label used in experiment row keys and reports (`min`, `max`,
    /// `avg`, `p50`, ...).
    pub fn label(self) -> String {
        match self {
            AggregateOp::Min => "min".to_string(),
            AggregateOp::Max => "max".to_string(),
            AggregateOp::Avg => "avg".to_string(),
            AggregateOp::Quantile(q) => format!("p{:02}", (q * 100.0).round() as u32),
        }
    }

    /// Parses the axis-registry form: `min|max|avg|quantile:Q`.
    pub fn parse(text: &str) -> Option<AggregateOp> {
        match text {
            "min" => Some(AggregateOp::Min),
            "max" => Some(AggregateOp::Max),
            "avg" => Some(AggregateOp::Avg),
            _ => {
                let q: f64 = text.strip_prefix("quantile:")?.parse().ok()?;
                Some(AggregateOp::Quantile(q))
            }
        }
    }
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateOp::Quantile(q) => write!(f, "quantile:{q}"),
            other => f.write_str(&other.label()),
        }
    }
}

/// The aggregate clause a query carries on the wire: which operator, and the
/// quantile error budget the repliers must honor when building digests.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpec {
    /// The operator.
    pub op: AggregateOp,
    /// Rank-error budget for quantile digests, as a fraction of the stream
    /// length (`(0, 0.5]`). Ignored by min/max/avg.
    pub epsilon: f64,
}

/// A q-digest: a mergeable quantile summary over a bounded integer domain.
///
/// Values are offsets into `domain`, laid out on the complete binary tree
/// over the domain padded to the next power of two (`capacity`). Node ids use
/// heap numbering: the root is 1, node `i`'s children are `2i` and `2i + 1`,
/// and the leaf for offset `x` is `capacity + x`. Counts live in a `BTreeMap`
/// so iteration, equality, and serialization are all deterministic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QDigest {
    domain: ValueRange,
    /// Domain width padded to a power of two.
    capacity: u64,
    /// `log2(capacity)` — the tree depth below the root.
    levels: u32,
    /// Compression factor `ceil(levels / epsilon)`.
    k: u64,
    /// Total mass inserted (exact, never approximated).
    n: u64,
    /// Heap-numbered tree node -> count.
    nodes: BTreeMap<u64, u64>,
}

impl QDigest {
    /// An empty digest over `domain` with rank-error budget `epsilon`.
    ///
    /// `epsilon` is clamped to `(0, 0.5]`; the compression factor is
    /// `k = ceil(log2(sigma) / epsilon)` where `sigma` is the padded domain
    /// width, which yields rank error at most `epsilon * n`.
    pub fn new(domain: ValueRange, epsilon: f64) -> Self {
        let epsilon = if epsilon.is_finite() {
            epsilon.clamp(1e-6, 0.5)
        } else {
            0.5
        };
        let capacity = domain.width().next_power_of_two().max(2);
        let levels = capacity.trailing_zeros();
        let k = ((levels as f64) / epsilon).ceil().max(1.0) as u64;
        QDigest {
            domain,
            capacity,
            levels,
            k,
            n: 0,
            nodes: BTreeMap::new(),
        }
    }

    /// Total mass inserted.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The domain this digest summarizes.
    pub fn domain(&self) -> ValueRange {
        self.domain
    }

    /// Number of tree nodes currently stored (the digest's size).
    pub fn stored_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts one occurrence of `v` (clamped into the domain).
    pub fn insert(&mut self, v: Value) {
        self.insert_n(v, 1);
    }

    /// Inserts `count` occurrences of `v` (clamped into the domain).
    pub fn insert_n(&mut self, v: Value, count: u64) {
        if count == 0 {
            return;
        }
        let v = v.clamp(self.domain.lo, self.domain.hi);
        let offset = (v - self.domain.lo) as u64;
        let leaf = self.capacity + offset;
        *self.nodes.entry(leaf).or_insert(0) += count;
        self.n += count;
        // Compress when the digest grows past its size budget (3k nodes is
        // the classic bound); compressing on every insert would be O(n log n).
        if self.nodes.len() as u64 > 3 * self.k {
            self.compress();
        }
    }

    /// Merges `other` into `self`. Both must cover the same domain with the
    /// same compression factor (the workload builds every digest from one
    /// `AggregateSpec`, so this always holds in-protocol).
    pub fn merge(&mut self, other: &QDigest) {
        debug_assert_eq!(self.capacity, other.capacity, "digest domains differ");
        for (&node, &count) in &other.nodes {
            *self.nodes.entry(node).or_insert(0) += count;
        }
        self.n += other.n;
        self.compress();
    }

    /// Restores the q-digest invariant: any child pair whose mass (together
    /// with the parent's) fits under `floor(n/k)` is folded into the parent.
    /// Mass only ever moves to an internal node while respecting the current
    /// threshold, which is what bounds the rank error. While `n < k` the
    /// threshold is zero and nothing folds: the digest stays exact, which is
    /// what keeps the error under `epsilon * n` when `epsilon * n < 1`.
    pub fn compress(&mut self) {
        let threshold = self.n / self.k;
        if threshold == 0 {
            return;
        }
        // Bottom-up, so freshly-merged parents can keep folding upward.
        for level in (1..=self.levels).rev() {
            let lo = 1u64 << level;
            let hi = (1u64 << (level + 1)) - 1;
            let ids: Vec<u64> = self
                .nodes
                .range(lo..=hi)
                .map(|(&id, _)| id)
                .filter(|id| id % 2 == 0)
                .collect();
            for left in ids {
                let right = left + 1;
                let parent = left / 2;
                let pair = self.nodes.get(&left).copied().unwrap_or(0)
                    + self.nodes.get(&right).copied().unwrap_or(0);
                if pair == 0 {
                    continue;
                }
                let held = self.nodes.get(&parent).copied().unwrap_or(0);
                if pair + held <= threshold {
                    self.nodes.remove(&left);
                    self.nodes.remove(&right);
                    *self.nodes.entry(parent).or_insert(0) += pair;
                }
            }
            // Odd-numbered nodes whose even sibling is absent: try them too.
            let ids: Vec<u64> = self
                .nodes
                .range(lo..=hi)
                .map(|(&id, _)| id)
                .filter(|id| id % 2 == 1)
                .collect();
            for right in ids {
                let left = right - 1;
                if self.nodes.contains_key(&left) || !self.nodes.contains_key(&right) {
                    continue; // pairs were handled above / already folded
                }
                let parent = right / 2;
                let mass = self.nodes.get(&right).copied().unwrap_or(0);
                let held = self.nodes.get(&parent).copied().unwrap_or(0);
                if mass + held <= threshold {
                    self.nodes.remove(&right);
                    *self.nodes.entry(parent).or_insert(0) += mass;
                }
            }
        }
    }

    /// The inclusive offset range `[lo, hi]` a heap-numbered node covers.
    fn node_range(&self, id: u64) -> (u64, u64) {
        let level = 63 - id.leading_zeros() as u64;
        let width = self.capacity >> level;
        let offset = (id - (1 << level)) * width;
        (offset, offset + width - 1)
    }

    /// The `q`-quantile: the smallest stored boundary whose accumulated mass
    /// reaches rank `ceil(q * n)`, scanning tree nodes in ascending order of
    /// their range's upper end (ties: narrower node first). `None` when the
    /// digest is empty.
    pub fn quantile(&self, q: f64) -> Option<Value> {
        if self.n == 0 {
            return None;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.5
        };
        let rank = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut ordered: Vec<(u64, u64, u64)> = self
            .nodes
            .iter()
            .map(|(&id, &count)| {
                let (lo, hi) = self.node_range(id);
                (hi, hi - lo, count)
            })
            .collect();
        ordered.sort_unstable_by_key(|&(hi, width, _)| (hi, width));
        let mut acc = 0u64;
        for (hi, _, count) in ordered {
            acc += count;
            if acc >= rank {
                let offset = hi.min(self.domain.width() - 1);
                return Some(self.domain.lo + offset as Value);
            }
        }
        Some(self.domain.hi)
    }
}

/// A mergeable partial aggregate: exact count/min/max/sum, plus an optional
/// q-digest when the operator needs quantiles. This is what travels up the
/// aggregation tree and what the basestation folds replies into.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartialAggregate {
    /// Number of readings aggregated.
    pub count: u64,
    /// Smallest value seen (`Value::MAX` while empty).
    pub min: Value,
    /// Largest value seen (`Value::MIN` while empty).
    pub max: Value,
    /// Sum of values (i64: no overflow for any feasible run).
    pub sum: i64,
    /// Quantile sketch; `None` for min/max/avg workloads.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub digest: Option<QDigest>,
}

impl PartialAggregate {
    /// An empty partial with no digest (min/max/avg workloads).
    pub fn empty() -> Self {
        PartialAggregate {
            count: 0,
            min: Value::MAX,
            max: Value::MIN,
            sum: 0,
            digest: None,
        }
    }

    /// An empty partial shaped for `spec`: quantile operators get a digest
    /// over `domain` at the spec's epsilon, everything else stays exact-only.
    pub fn for_spec(spec: &AggregateSpec, domain: ValueRange) -> Self {
        let mut p = PartialAggregate::empty();
        if matches!(spec.op, AggregateOp::Quantile(_)) {
            p.digest = Some(QDigest::new(domain, spec.epsilon));
        }
        p
    }

    /// Folds one value in.
    pub fn observe(&mut self, v: Value) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as i64;
        if let Some(d) = self.digest.as_mut() {
            d.insert(v);
        }
    }

    /// Merges another partial in. Exact fields combine exactly; digests merge
    /// within the q-digest error contract. A digest on either side survives.
    pub fn merge(&mut self, other: &PartialAggregate) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        match (self.digest.as_mut(), other.digest.as_ref()) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.digest = Some(theirs.clone()),
            _ => {}
        }
    }

    /// The mean, when anything was aggregated.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The final scalar answer for `op`, when anything was aggregated.
    /// Quantiles require the digest (`None` without one).
    pub fn answer(&self, op: AggregateOp) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        match op {
            AggregateOp::Min => Some(self.min as f64),
            AggregateOp::Max => Some(self.max as f64),
            AggregateOp::Avg => self.avg(),
            AggregateOp::Quantile(q) => self.digest.as_ref()?.quantile(q).map(|v| v as f64),
        }
    }
}

impl Default for PartialAggregate {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: ValueRange = ValueRange { lo: 0, hi: 149 };

    fn exact_rank_bounds(sorted: &[Value], v: Value) -> (u64, u64) {
        let below = sorted.iter().filter(|&&x| x < v).count() as u64;
        let at_most = sorted.iter().filter(|&&x| x <= v).count() as u64;
        (below + 1, at_most)
    }

    /// Shared assertion: `v`'s true rank interval must intersect the target
    /// rank's epsilon-ball.
    fn assert_rank_within(sorted: &[Value], v: Value, q: f64, epsilon: f64) {
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let slack = (epsilon * n as f64).ceil() as u64;
        let (lo, hi) = exact_rank_bounds(sorted, v);
        assert!(
            lo <= rank + slack && hi + slack >= rank,
            "value {v}: rank interval [{lo}, {hi}] vs target {rank} ± {slack} (n={n})"
        );
    }

    #[test]
    fn exact_when_uncompressed() {
        let mut d = QDigest::new(DOMAIN, 0.1);
        let mut vals: Vec<Value> = vec![3, 9, 9, 20, 77, 142];
        for &v in &vals {
            d.insert(v);
        }
        vals.sort_unstable();
        assert_eq!(d.count(), 6);
        for (q, want) in [(0.01, 3), (0.5, 9), (0.99, 142)] {
            let got = d.quantile(q).unwrap();
            assert_rank_within(&vals, got, q, 0.1);
            let _ = want; // representative targets; the contract is the rank bound
        }
        assert_eq!(d.quantile(0.0), Some(3));
        assert_eq!(d.quantile(1.0), Some(142));
    }

    #[test]
    fn empty_digest_has_no_quantile() {
        let d = QDigest::new(DOMAIN, 0.1);
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn heavy_stream_respects_epsilon_after_compression() {
        let eps = 0.05;
        let mut d = QDigest::new(DOMAIN, eps);
        let mut vals = Vec::new();
        // A skewed deterministic stream with repeats.
        for i in 0..5_000u64 {
            let v = ((i * i * 31 + i * 7) % 150) as Value;
            let v = (v / 3) * 3; // cluster into 50 distinct values
            vals.push(v);
            d.insert(v);
        }
        vals.sort_unstable();
        assert!(
            d.stored_nodes() as u64 <= 3 * ((8.0 / eps).ceil() as u64) + 8,
            "digest failed to compress: {} nodes",
            d.stored_nodes()
        );
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let got = d.quantile(q).unwrap();
            assert_rank_within(&vals, got, q, eps);
        }
    }

    #[test]
    fn merge_preserves_count_and_error_bound() {
        let eps = 0.1;
        let mut parts: Vec<QDigest> = Vec::new();
        let mut vals = Vec::new();
        for p in 0..7u64 {
            let mut d = QDigest::new(DOMAIN, eps);
            for i in 0..300u64 {
                let v = ((p * 1_000 + i * 13) % 150) as Value;
                vals.push(v);
                d.insert(v);
            }
            parts.push(d);
        }
        // Unbalanced left fold.
        let mut folded = QDigest::new(DOMAIN, eps);
        for p in &parts {
            folded.merge(p);
        }
        // Pairwise tree fold.
        let mut layer = parts.clone();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                let mut m = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    m.merge(b);
                }
                next.push(m);
            }
            layer = next;
        }
        let tree = layer.pop().unwrap();
        vals.sort_unstable();
        assert_eq!(folded.count(), vals.len() as u64);
        assert_eq!(tree.count(), vals.len() as u64);
        for q in [0.05, 0.5, 0.95] {
            assert_rank_within(&vals, folded.quantile(q).unwrap(), q, eps);
            assert_rank_within(&vals, tree.quantile(q).unwrap(), q, eps);
        }
        // Merging an empty digest is the identity on the answers.
        let before = folded.quantile(0.5);
        folded.merge(&QDigest::new(DOMAIN, eps));
        assert_eq!(folded.quantile(0.5), before);
    }

    #[test]
    fn partial_aggregate_merges_exact_fields_exactly() {
        let spec = AggregateSpec {
            op: AggregateOp::Quantile(0.5),
            epsilon: 0.1,
        };
        let mut a = PartialAggregate::for_spec(&spec, DOMAIN);
        let mut b = PartialAggregate::for_spec(&spec, DOMAIN);
        for v in [5, 10, 15] {
            a.observe(v);
        }
        for v in [1, 100] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 100);
        assert_eq!(a.sum, 131);
        assert!((a.avg().unwrap() - 26.2).abs() < 1e-9);
        assert_eq!(a.answer(AggregateOp::Min), Some(1.0));
        assert_eq!(a.answer(AggregateOp::Max), Some(100.0));
        let median = a.answer(AggregateOp::Quantile(0.5)).unwrap();
        assert!((1.0..=100.0).contains(&median));
        // Merging an empty partial changes nothing.
        let snapshot = a.clone();
        a.merge(&PartialAggregate::empty());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn empty_partial_answers_nothing() {
        let p = PartialAggregate::empty();
        for op in [
            AggregateOp::Min,
            AggregateOp::Max,
            AggregateOp::Avg,
            AggregateOp::Quantile(0.5),
        ] {
            assert_eq!(p.answer(op), None);
        }
    }

    #[test]
    fn aggregate_op_labels_and_parsing() {
        assert_eq!(AggregateOp::parse("min"), Some(AggregateOp::Min));
        assert_eq!(AggregateOp::parse("max"), Some(AggregateOp::Max));
        assert_eq!(AggregateOp::parse("avg"), Some(AggregateOp::Avg));
        assert_eq!(
            AggregateOp::parse("quantile:0.5"),
            Some(AggregateOp::Quantile(0.5))
        );
        assert_eq!(AggregateOp::parse("median"), None);
        assert_eq!(AggregateOp::Quantile(0.5).label(), "p50");
        assert_eq!(AggregateOp::Quantile(0.99).label(), "p99");
        assert_eq!(AggregateOp::Min.label(), "min");
        assert_eq!(AggregateOp::Quantile(0.25).to_string(), "quantile:0.25");
        assert_eq!(
            AggregateOp::parse(&AggregateOp::Quantile(0.25).to_string()),
            Some(AggregateOp::Quantile(0.25))
        );
    }

    #[test]
    fn digest_serde_round_trips() {
        let mut d = QDigest::new(DOMAIN, 0.05);
        for i in 0..500 {
            d.insert((i * 7 % 150) as Value);
        }
        let json = serde_json::to_string(&d).unwrap();
        let back: QDigest = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.quantile(0.5), d.quantile(0.5));
    }
}
