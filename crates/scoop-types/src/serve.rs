//! Wire schema of the `scoop-serve` query front end.
//!
//! External clients talk to a serving process in fixed little-endian frames,
//! the same codec discipline as [`DurableRecord`]'s on-disk layout: every
//! crate that touches served bytes shares this one definition, and a format
//! change is a change to exactly one file.
//!
//! A request is a point/range predicate over `(value, sample time)`. A
//! response is either the matching rows in canonical
//! `(time, node, attribute, value)` order, or a typed [`Overloaded`]
//! rejection when the server's bounded admission queue is full — rejection is
//! part of the wire contract, never a dropped connection or a silent miss.
//!
//! Frame layouts (all integers little-endian):
//!
//! ```text
//! request  (32 bytes): id u64 | value_lo i32 | value_hi i32 | time_lo u64 | time_hi u64
//! response (rows):     id u64 | status 0 u8 | count u32 | count x 16-byte DurableRecord
//! response (overload): id u64 | status 1 u8 | queued u32 | capacity u32
//! ```
//!
//! The bytes after `id | status` of a rows response are its *payload*; the
//! serving tier's answer cache stores payloads verbatim, so a cache hit
//! splices the identical bytes an uncached evaluation would produce.

use crate::{DurableRecord, ScoopError, SimTime, Value, ValueRange, DURABLE_RECORD_LEN};
use serde::{Deserialize, Serialize};

/// Size of one encoded request frame, in bytes.
pub const SERVE_REQUEST_LEN: usize = 32;

/// Status byte of a rows response.
pub const SERVE_STATUS_ROWS: u8 = 0;
/// Status byte of an overloaded rejection.
pub const SERVE_STATUS_OVERLOADED: u8 = 1;

/// One external point/range query against a served network.
///
/// A point query is a request whose value range (and/or time range) is a
/// single point; there is no separate frame type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: u64,
    /// Value range of interest (inclusive).
    pub values: ValueRange,
    /// Earliest sample timestamp of interest (inclusive).
    pub time_lo: SimTime,
    /// Latest sample timestamp of interest (inclusive).
    pub time_hi: SimTime,
}

/// The predicate part of a request — everything except the request id. Two
/// requests with equal predicates have byte-identical response payloads, so
/// this is both the admission coalescing key and the answer-cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryPredicate {
    /// Inclusive low end of the value range.
    pub value_lo: Value,
    /// Inclusive high end of the value range.
    pub value_hi: Value,
    /// Earliest sample timestamp, in milliseconds.
    pub time_lo_ms: u64,
    /// Latest sample timestamp, in milliseconds.
    pub time_hi_ms: u64,
}

impl QueryPredicate {
    /// True if a record with this `(value, time)` would appear in the answer.
    pub fn matches(&self, value: Value, time_ms: u64) -> bool {
        value >= self.value_lo
            && value <= self.value_hi
            && time_ms >= self.time_lo_ms
            && time_ms <= self.time_hi_ms
    }
}

impl ServeRequest {
    /// The predicate this request asks about.
    pub fn predicate(&self) -> QueryPredicate {
        QueryPredicate {
            value_lo: self.values.lo,
            value_hi: self.values.hi,
            time_lo_ms: self.time_lo.as_millis(),
            time_hi_ms: self.time_hi.as_millis(),
        }
    }

    /// Encodes into the fixed 32-byte little-endian layout.
    pub fn encode_into(&self, out: &mut [u8; SERVE_REQUEST_LEN]) {
        out[0..8].copy_from_slice(&self.id.to_le_bytes());
        out[8..12].copy_from_slice(&self.values.lo.to_le_bytes());
        out[12..16].copy_from_slice(&self.values.hi.to_le_bytes());
        out[16..24].copy_from_slice(&self.time_lo.as_millis().to_le_bytes());
        out[24..32].copy_from_slice(&self.time_hi.as_millis().to_le_bytes());
    }

    /// Decodes the fixed layout written by [`ServeRequest::encode_into`].
    /// An inverted value range is an encoding error, not silently normalized:
    /// the bytes did not come from this codec.
    pub fn decode(bytes: &[u8; SERVE_REQUEST_LEN]) -> Result<Self, ScoopError> {
        let lo = Value::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let hi = Value::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if lo > hi {
            return Err(ScoopError::Serialization(format!(
                "serve request value range [{lo}, {hi}] is inverted"
            )));
        }
        Ok(ServeRequest {
            id: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            values: ValueRange::new(lo, hi),
            time_lo: SimTime::from_millis(u64::from_le_bytes(
                bytes[16..24].try_into().expect("8 bytes"),
            )),
            time_hi: SimTime::from_millis(u64::from_le_bytes(
                bytes[24..32].try_into().expect("8 bytes"),
            )),
        })
    }
}

/// Typed backpressure rejection: the bounded admission queue was full when
/// this request arrived. The client may retry after a tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Overloaded {
    /// The rejected request's id.
    pub id: u64,
    /// Requests queued when the rejection happened.
    pub queued: u32,
    /// The admission queue's capacity.
    pub capacity: u32,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request {} rejected: admission queue full ({}/{})",
            self.id, self.queued, self.capacity
        )
    }
}

/// One response frame: the rows, or a typed overload rejection.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeResponse {
    /// The matching rows, in canonical `(time, node, attribute, value)`
    /// order.
    Rows(ServeRows),
    /// The request was rejected by backpressure.
    Overloaded(Overloaded),
}

/// The rows half of a [`ServeResponse`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeRows {
    /// The request's id, echoed.
    pub id: u64,
    /// Matching records, canonically ordered.
    pub rows: Vec<DurableRecord>,
}

impl ServeResponse {
    /// The request id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            ServeResponse::Rows(r) => r.id,
            ServeResponse::Overloaded(o) => o.id,
        }
    }

    /// Appends this response's frame bytes to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ServeResponse::Rows(r) => {
                let mut payload = Vec::with_capacity(4 + r.rows.len() * DURABLE_RECORD_LEN);
                append_rows_payload(&r.rows, &mut payload);
                append_rows_frame(r.id, &payload, out);
            }
            ServeResponse::Overloaded(o) => append_overloaded_frame(o, out),
        }
    }

    /// Decodes one whole response frame.
    pub fn decode(bytes: &[u8]) -> Result<Self, ScoopError> {
        let short = |what: &str| {
            ScoopError::Serialization(format!(
                "serve response frame truncated in {what} ({} bytes)",
                bytes.len()
            ))
        };
        if bytes.len() < 9 {
            return Err(short("header"));
        }
        let id = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        match bytes[8] {
            SERVE_STATUS_ROWS => {
                if bytes.len() < 13 {
                    return Err(short("row count"));
                }
                let count = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes")) as usize;
                let body = &bytes[13..];
                if body.len() != count * DURABLE_RECORD_LEN {
                    return Err(ScoopError::Serialization(format!(
                        "serve response claims {count} rows but carries {} bytes",
                        body.len()
                    )));
                }
                let mut rows = Vec::with_capacity(count);
                for chunk in body.chunks_exact(DURABLE_RECORD_LEN) {
                    let arr: &[u8; DURABLE_RECORD_LEN] =
                        chunk.try_into().expect("exact chunks are 16 bytes");
                    rows.push(DurableRecord::decode(arr)?);
                }
                Ok(ServeResponse::Rows(ServeRows { id, rows }))
            }
            SERVE_STATUS_OVERLOADED => {
                if bytes.len() != 17 {
                    return Err(short("overload body"));
                }
                Ok(ServeResponse::Overloaded(Overloaded {
                    id,
                    queued: u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes")),
                    capacity: u32::from_le_bytes(bytes[13..17].try_into().expect("4 bytes")),
                }))
            }
            other => Err(ScoopError::Serialization(format!(
                "unknown serve response status {other:#04x}"
            ))),
        }
    }
}

/// Appends the payload of a rows response — `count u32` followed by the
/// records — to `out`. The serving tier caches these bytes verbatim.
pub fn append_rows_payload(rows: &[DurableRecord], out: &mut Vec<u8>) {
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    let mut buf = [0u8; DURABLE_RECORD_LEN];
    for row in rows {
        row.encode_into(&mut buf);
        out.extend_from_slice(&buf);
    }
}

/// Appends a whole rows frame (`id | status | payload`) to `out`.
pub fn append_rows_frame(id: u64, payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&id.to_le_bytes());
    out.push(SERVE_STATUS_ROWS);
    out.extend_from_slice(payload);
}

/// Appends a whole overloaded frame to `out`.
pub fn append_overloaded_frame(o: &Overloaded, out: &mut Vec<u8>) {
    out.extend_from_slice(&o.id.to_le_bytes());
    out.push(SERVE_STATUS_OVERLOADED);
    out.extend_from_slice(&o.queued.to_le_bytes());
    out.extend_from_slice(&o.capacity.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn record(time_ms: u64, node: u16, value: Value) -> DurableRecord {
        DurableRecord {
            time_ms,
            node: NodeId(node),
            attribute: 0,
            value,
        }
    }

    #[test]
    fn request_round_trip_and_layout() {
        let req = ServeRequest {
            id: 0xDEAD_BEEF_0102_0304,
            values: ValueRange::new(-3, 17),
            time_lo: SimTime::from_millis(1_000),
            time_hi: SimTime::from_millis(9_999),
        };
        let mut buf = [0u8; SERVE_REQUEST_LEN];
        req.encode_into(&mut buf);
        assert_eq!(buf[0..8], req.id.to_le_bytes());
        assert_eq!(buf[8..12], (-3i32).to_le_bytes());
        assert_eq!(ServeRequest::decode(&buf).unwrap(), req);
    }

    #[test]
    fn inverted_value_range_is_a_decode_error() {
        let req = ServeRequest {
            id: 1,
            values: ValueRange::new(0, 10),
            time_lo: SimTime::ZERO,
            time_hi: SimTime::from_secs(1),
        };
        let mut buf = [0u8; SERVE_REQUEST_LEN];
        req.encode_into(&mut buf);
        buf[8..12].copy_from_slice(&20i32.to_le_bytes()); // lo > hi
        assert!(ServeRequest::decode(&buf).is_err());
    }

    #[test]
    fn rows_response_round_trip() {
        let resp = ServeResponse::Rows(ServeRows {
            id: 42,
            rows: vec![record(5, 1, -7), record(6, 2, 9)],
        });
        let mut frame = Vec::new();
        resp.encode_into(&mut frame);
        assert_eq!(frame.len(), 8 + 1 + 4 + 2 * DURABLE_RECORD_LEN);
        assert_eq!(frame[8], SERVE_STATUS_ROWS);
        assert_eq!(ServeResponse::decode(&frame).unwrap(), resp);
        assert_eq!(resp.id(), 42);
    }

    #[test]
    fn empty_rows_response_round_trip() {
        let resp = ServeResponse::Rows(ServeRows {
            id: 7,
            rows: Vec::new(),
        });
        let mut frame = Vec::new();
        resp.encode_into(&mut frame);
        assert_eq!(frame.len(), 13);
        assert_eq!(ServeResponse::decode(&frame).unwrap(), resp);
    }

    #[test]
    fn overloaded_response_round_trip() {
        let resp = ServeResponse::Overloaded(Overloaded {
            id: 9,
            queued: 1024,
            capacity: 1024,
        });
        let mut frame = Vec::new();
        resp.encode_into(&mut frame);
        assert_eq!(frame.len(), 17);
        assert_eq!(frame[8], SERVE_STATUS_OVERLOADED);
        assert_eq!(ServeResponse::decode(&frame).unwrap(), resp);
        assert_eq!(resp.id(), 9);
        let shown = format!(
            "{}",
            Overloaded {
                id: 9,
                queued: 1024,
                capacity: 1024,
            }
        );
        assert!(shown.contains("queue full"), "{shown}");
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        assert!(ServeResponse::decode(&[]).is_err());
        assert!(ServeResponse::decode(&[0; 8]).is_err());
        let mut frame = Vec::new();
        ServeResponse::Rows(ServeRows {
            id: 1,
            rows: vec![record(1, 1, 1)],
        })
        .encode_into(&mut frame);
        frame.pop(); // truncate the last record byte
        assert!(ServeResponse::decode(&frame).is_err());
        frame.push(0);
        frame[8] = 0x7F; // unknown status
        assert!(ServeResponse::decode(&frame).is_err());
    }

    #[test]
    fn cached_payload_splice_is_byte_identical_to_direct_encoding() {
        // The serving tier's cache stores a rows payload and splices it under
        // a different request id; the result must equal a direct encoding.
        let rows = vec![record(3, 4, 5), record(8, 1, -2)];
        let mut payload = Vec::new();
        append_rows_payload(&rows, &mut payload);

        let mut spliced = Vec::new();
        append_rows_frame(77, &payload, &mut spliced);

        let mut direct = Vec::new();
        ServeResponse::Rows(ServeRows { id: 77, rows }).encode_into(&mut direct);
        assert_eq!(spliced, direct);
    }

    #[test]
    fn predicate_matching_and_coalescing_key() {
        let a = ServeRequest {
            id: 1,
            values: ValueRange::new(2, 4),
            time_lo: SimTime::from_millis(10),
            time_hi: SimTime::from_millis(20),
        };
        let b = ServeRequest { id: 2, ..a };
        assert_eq!(a.predicate(), b.predicate(), "id is not part of the key");
        let p = a.predicate();
        assert!(p.matches(3, 15));
        assert!(!p.matches(5, 15), "value outside range");
        assert!(!p.matches(3, 21), "time outside range");
        assert!(p.matches(2, 10) && p.matches(4, 20), "bounds are inclusive");
    }
}
