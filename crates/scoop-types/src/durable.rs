//! The durable on-disk form of one sensor reading.
//!
//! [`DurableRecord`] is the schema-stable `(node, attribute, time, value)`
//! tuple the `scoop-store` basestation store appends to its segment log. The
//! fixed 16-byte little-endian encoding lives here — next to the types it is
//! made of — so that every crate that touches persisted bytes shares one
//! definition, and a format change is a change to exactly one file.
//!
//! Records sort by `(time, node, attribute, value)`: the segment log is
//! time-ordered (that is what makes the learned index over the time column
//! work), and the remaining fields give ingest a total order so equal-time
//! records land deterministically.

use crate::{Attribute, NodeId, Reading, ScoopError, SimTime, Value};
use serde::{Deserialize, Serialize};

/// Size of one encoded record on disk, in bytes.
pub const DURABLE_RECORD_LEN: usize = 16;

/// One `(node, attribute, time, value)` reading in its durable form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DurableRecord {
    /// Sample timestamp in simulated milliseconds. First field so the derived
    /// `Ord` sorts time-major, matching the segment log's required order.
    pub time_ms: u64,
    /// The node the reading belongs to (its producer).
    pub node: NodeId,
    /// Stable one-byte attribute code (see [`attribute_code`]).
    pub attribute: u8,
    /// The sampled value.
    pub value: Value,
}

/// The stable on-disk code of an attribute: its position in
/// [`Attribute::ALL`]. Appending new attributes keeps old codes valid.
pub fn attribute_code(attribute: Attribute) -> u8 {
    Attribute::ALL
        .iter()
        .position(|&a| a == attribute)
        .expect("every attribute is listed in Attribute::ALL") as u8
}

/// The attribute for a stored code, or `None` for a code this build does not
/// know (a record written by a newer schema).
pub fn attribute_from_code(code: u8) -> Option<Attribute> {
    Attribute::ALL.get(code as usize).copied()
}

impl DurableRecord {
    /// Builds the durable form of an in-memory reading.
    pub fn from_reading(reading: &Reading) -> Self {
        DurableRecord {
            time_ms: reading.timestamp.as_millis(),
            node: reading.producer,
            attribute: attribute_code(reading.attribute),
            value: reading.value,
        }
    }

    /// Reconstructs the in-memory reading, if the attribute code is known.
    pub fn to_reading(&self) -> Option<Reading> {
        attribute_from_code(self.attribute).map(|attribute| Reading {
            producer: self.node,
            attribute,
            value: self.value,
            timestamp: SimTime::from_millis(self.time_ms),
        })
    }

    /// Encodes into the fixed 16-byte little-endian layout:
    /// `node u16 | attribute u8 | reserved u8 (0) | value i32 | time u64`.
    pub fn encode_into(&self, out: &mut [u8; DURABLE_RECORD_LEN]) {
        out[0..2].copy_from_slice(&self.node.0.to_le_bytes());
        out[2] = self.attribute;
        out[3] = 0;
        out[4..8].copy_from_slice(&self.value.to_le_bytes());
        out[8..16].copy_from_slice(&self.time_ms.to_le_bytes());
    }

    /// Decodes the fixed layout written by [`DurableRecord::encode_into`].
    /// The reserved byte must be zero — anything else means the bytes are not
    /// a record of this schema version.
    pub fn decode(bytes: &[u8; DURABLE_RECORD_LEN]) -> Result<Self, ScoopError> {
        if bytes[3] != 0 {
            return Err(ScoopError::Store(format!(
                "record reserved byte is {:#04x}, expected 0 (newer schema?)",
                bytes[3]
            )));
        }
        Ok(DurableRecord {
            node: NodeId(u16::from_le_bytes([bytes[0], bytes[1]])),
            attribute: bytes[2],
            value: Value::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            time_ms: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_codes_are_stable_and_round_trip() {
        for (i, &a) in Attribute::ALL.iter().enumerate() {
            assert_eq!(attribute_code(a) as usize, i);
            assert_eq!(attribute_from_code(i as u8), Some(a));
        }
        assert_eq!(attribute_from_code(200), None);
    }

    #[test]
    fn reading_round_trip() {
        let r = Reading::new(
            NodeId(7),
            Attribute::Light,
            -42,
            SimTime::from_millis(12345),
        );
        let d = DurableRecord::from_reading(&r);
        assert_eq!(d.to_reading(), Some(r));
    }

    #[test]
    fn binary_round_trip_and_layout() {
        let d = DurableRecord {
            time_ms: 0x0102_0304_0506_0708,
            node: NodeId(0xBEEF),
            attribute: 2,
            value: -5,
        };
        let mut buf = [0u8; DURABLE_RECORD_LEN];
        d.encode_into(&mut buf);
        assert_eq!(buf[0..2], 0xBEEFu16.to_le_bytes());
        assert_eq!(buf[2], 2);
        assert_eq!(buf[3], 0, "reserved byte");
        assert_eq!(DurableRecord::decode(&buf).unwrap(), d);

        let mut bad = buf;
        bad[3] = 1;
        assert!(DurableRecord::decode(&bad).is_err());
    }

    #[test]
    fn ordering_is_time_major() {
        let a = DurableRecord {
            time_ms: 1,
            node: NodeId(9),
            attribute: 4,
            value: 100,
        };
        let b = DurableRecord {
            time_ms: 2,
            node: NodeId(0),
            attribute: 0,
            value: -100,
        };
        assert!(a < b);
    }
}
