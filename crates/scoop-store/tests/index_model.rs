//! Property-based model test: the learned (piecewise-linear) time index must
//! agree with the `BTreeMap` reference index on every lookup, over arbitrary
//! monotone workloads — including the empty, single-block, and
//! duplicate-timestamp edges — and a segment queried through either index
//! must return identical point and range results.

use proptest::prelude::*;
use scoop_store::{BTreeRefIndex, BlockMeta, LearnedTimeIndex, SegmentWriter, TimeIndex};
use scoop_types::{DurableRecord, NodeId};
use std::path::PathBuf;

/// Folds `(gap, span, count)` triples into a valid monotone block directory:
/// each block starts at or after the previous block's last timestamp (a zero
/// gap produces duplicate timestamps across block boundaries).
fn directory(shape: &[(u64, u64, u16)]) -> Vec<BlockMeta> {
    let mut dir = Vec::with_capacity(shape.len());
    let mut clock = 0u64;
    for &(gap, span, count) in shape {
        let first = clock + gap;
        let last = first + span;
        clock = last;
        dir.push(BlockMeta {
            first_time_ms: first,
            last_time_ms: last,
            count: count.max(1) as u32,
        });
    }
    dir
}

/// Query times worth probing: every key, its neighbours, and the far edges.
fn probes(dir: &[BlockMeta]) -> Vec<u64> {
    let mut probes = vec![0, 1, u64::MAX];
    for meta in dir {
        for key in [meta.first_time_ms, meta.last_time_ms] {
            probes.extend([key.saturating_sub(1), key, key + 1]);
        }
    }
    probes
}

fn scratch(name: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "scoop-idxmodel-{}-{name}.scoop",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `first_block_for` agrees with the reference on arbitrary monotone
    /// directories, for every error bound, at every interesting query time.
    #[test]
    fn learned_index_matches_reference_on_lookup(
        shape in proptest::collection::vec((0u64..20, 0u64..20, 1u16..512), 0..64),
        max_error in 1u32..9,
        extra in proptest::collection::vec(0u64..2_000, 0..16),
    ) {
        let dir = directory(&shape);
        let learned = LearnedTimeIndex::build_with_error(&dir, max_error);
        let reference = BTreeRefIndex::build(&dir);
        let mut times = probes(&dir);
        times.extend(extra);
        for t in times {
            prop_assert_eq!(
                learned.first_block_for(t, &dir),
                reference.first_block_for(t, &dir),
                "t={} over {} blocks (max_error {})", t, dir.len(), max_error
            );
        }
    }

    /// A real sealed segment answers point and range queries identically
    /// through the learned and the reference index, and both match a naive
    /// in-memory filter over the ingested records.
    #[test]
    fn segment_queries_agree_with_naive_model(
        deltas in proptest::collection::vec(0u64..30, 1..300),
        windows in proptest::collection::vec((0u64..4_000, 0u64..500), 1..12),
        case in 0u64..u64::MAX,
    ) {
        let mut records = Vec::with_capacity(deltas.len());
        let mut clock = 0u64;
        for (i, &delta) in deltas.iter().enumerate() {
            clock += delta; // delta 0 => duplicate timestamps
            records.push(DurableRecord {
                time_ms: clock,
                node: NodeId((i % 7) as u16 + 1),
                attribute: (i % 3) as u8,
                value: i as i32,
            });
        }
        records.sort_unstable();

        let path = scratch(case);
        let _ = std::fs::remove_file(&path);
        let mut writer = SegmentWriter::create(&path, 8 + 16 * 4).unwrap();
        writer.append_batch(&records).unwrap();
        let segment = writer.seal().unwrap();

        for &(start, width) in &windows {
            let (t0, t1) = (start, start.saturating_add(width));
            let expected: Vec<DurableRecord> = records
                .iter()
                .copied()
                .filter(|r| (t0..=t1).contains(&r.time_ms))
                .collect();
            let learned = segment
                .scan_matching(t0, t1, segment.learned_index())
                .unwrap();
            let reference = segment
                .scan_matching(t0, t1, segment.reference_index())
                .unwrap();
            prop_assert_eq!(&learned.records, &expected, "range [{}, {}]", t0, t1);
            prop_assert_eq!(&reference.records, &expected, "range [{}, {}]", t0, t1);
            // Point queries at both window edges.
            for t in [t0, t1] {
                let expected_point: Vec<DurableRecord> = records
                    .iter()
                    .copied()
                    .filter(|r| r.time_ms == t)
                    .collect();
                prop_assert_eq!(&segment.query_point(t).unwrap().records, &expected_point);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}
