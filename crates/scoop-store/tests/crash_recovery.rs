//! Crash-recovery harness: write N records, then truncate or corrupt the
//! file at every block boundary (and inside the header, blocks, index
//! region, and footer), and assert `open()` recovers exactly the committed
//! prefix — or surfaces a typed error — and never panics.

use scoop_store::{RecoveryOutcome, Segment, SegmentWriter, StoreError, HEADER_LEN};
use scoop_types::{DurableRecord, NodeId};
use std::path::{Path, PathBuf};

const BLOCK_SIZE: usize = 8 + 16 * 4; // 4 records per block
const RECORDS: u64 = 18; // 5 blocks: 4+4+4+4+2

fn record(t: u64) -> DurableRecord {
    DurableRecord {
        time_ms: t * 10,
        node: NodeId((t % 5) as u16 + 1),
        attribute: (t % 3) as u8,
        value: t as i32 * 7,
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scoop-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A sealed segment file plus the records it committed, for mutation.
fn sealed_fixture(dir: &Path) -> (PathBuf, Vec<DurableRecord>, usize) {
    let path = dir.join("seg-fixture.scoop");
    let mut writer = SegmentWriter::create(&path, BLOCK_SIZE).unwrap();
    let records: Vec<DurableRecord> = (0..RECORDS).map(record).collect();
    writer.append_batch(&records).unwrap();
    let segment = writer.seal().unwrap();
    let blocks = segment.block_count();
    assert_eq!(blocks, 5);
    drop(segment);
    (path, records, blocks)
}

/// Records that survive a truncation to `len` bytes: every record of every
/// block that fits entirely under the cut.
fn committed_prefix(records: &[DurableRecord], len: usize, blocks: usize) -> Vec<DurableRecord> {
    let whole_blocks = len.saturating_sub(HEADER_LEN) / BLOCK_SIZE;
    let per_block = (BLOCK_SIZE - 8) / 16;
    let survivors = whole_blocks.min(blocks) * per_block;
    records
        .iter()
        .copied()
        .take(survivors.min(records.len()))
        .collect()
}

#[test]
fn truncation_at_every_boundary_recovers_the_committed_prefix() {
    let dir = scratch("truncate");
    let (fixture, records, blocks) = sealed_fixture(&dir);
    let sealed_bytes = std::fs::read(&fixture).unwrap();
    let file_len = sealed_bytes.len();

    // Every block boundary, one byte each side of it, mid-header,
    // mid-block, mid-index-region, and mid-footer.
    let mut cuts: Vec<usize> = vec![0, 1, HEADER_LEN / 2, HEADER_LEN];
    for b in 0..=blocks {
        let boundary = HEADER_LEN + b * BLOCK_SIZE;
        cuts.extend([boundary.saturating_sub(1), boundary, boundary + 1]);
    }
    cuts.extend([file_len - 64, file_len - 32, file_len - 1]);
    cuts.retain(|&c| c < file_len);
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        let path = dir.join(format!("seg-cut{cut}.scoop"));
        std::fs::write(&path, &sealed_bytes[..cut]).unwrap();
        let expected = committed_prefix(&records, cut, blocks);
        match Segment::open(&path) {
            Ok(Some(segment)) => {
                assert!(
                    matches!(segment.recovery(), RecoveryOutcome::Resealed { .. }),
                    "cut at {cut}: a truncated file can never be cleanly sealed"
                );
                let recovered = segment.scan_all().unwrap().records;
                assert_eq!(recovered, expected, "cut at {cut}");
                drop(segment);
                // Recovery must converge: the second open is clean.
                let segment = Segment::open(&path)
                    .unwrap()
                    .expect("resealed file persists");
                assert_eq!(segment.recovery(), RecoveryOutcome::Sealed, "cut at {cut}");
                assert_eq!(segment.scan_all().unwrap().records, expected);
            }
            Ok(None) => {
                assert!(
                    expected.is_empty(),
                    "cut at {cut} silently dropped {} committed records",
                    expected.len()
                );
                assert!(!path.exists(), "empty recovery removes the file");
            }
            Err(e) => panic!("cut at {cut}: open must recover, got error: {e}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_footer_corruption_triggers_full_recovery() {
    let dir = scratch("footer");
    let (fixture, records, _) = sealed_fixture(&dir);
    let sealed_bytes = std::fs::read(&fixture).unwrap();
    let file_len = sealed_bytes.len();

    // Flip one byte at every offset inside the 64-byte footer.
    for offset in (file_len - 64)..file_len {
        let path = dir.join(format!("seg-foot{offset}.scoop"));
        let mut bytes = sealed_bytes.clone();
        bytes[offset] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        let segment = Segment::open(&path)
            .unwrap_or_else(|e| panic!("footer flip at {offset}: {e}"))
            .expect("data blocks are intact");
        assert!(
            matches!(segment.recovery(), RecoveryOutcome::Resealed { .. }),
            "footer flip at {offset} must invalidate the commit record"
        );
        assert_eq!(
            segment.scan_all().unwrap().records,
            records,
            "flip at {offset}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn data_corruption_is_a_typed_error_under_a_valid_footer() {
    let dir = scratch("datacorrupt");
    let (fixture, _, blocks) = sealed_fixture(&dir);
    let sealed_bytes = std::fs::read(&fixture).unwrap();

    for block in 0..blocks {
        let path = dir.join(format!("seg-blk{block}.scoop"));
        let mut bytes = sealed_bytes.clone();
        // Flip a payload byte in the middle of this block.
        bytes[HEADER_LEN + block * BLOCK_SIZE + BLOCK_SIZE / 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        // The footer is valid, so the segment opens (blocks verify lazily)…
        let segment = Segment::open(&path).unwrap().expect("footer is intact");
        assert_eq!(segment.recovery(), RecoveryOutcome::Sealed);
        // …and reading the damaged block is a typed error, never a panic.
        match segment.read_block(block) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "block {block}: {detail}")
            }
            other => panic!("block {block}: expected Corrupt, got {other:?}"),
        }
        assert!(segment.scan_all().is_err());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unsealed_corruption_truncates_to_the_last_valid_block() {
    let dir = scratch("unsealed");
    let (fixture, records, blocks) = sealed_fixture(&dir);
    let sealed_bytes = std::fs::read(&fixture).unwrap();
    let per_block = (BLOCK_SIZE - 8) / 16;

    for block in 0..blocks {
        let path = dir.join(format!("seg-unsealed{block}.scoop"));
        let mut bytes = sealed_bytes.clone();
        bytes[HEADER_LEN + block * BLOCK_SIZE + 9] ^= 0x08; // damage block payload
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF; // …and the footer, forcing a recovery scan
        std::fs::write(&path, &bytes).unwrap();
        let expected: Vec<DurableRecord> =
            records.iter().copied().take(block * per_block).collect();
        match Segment::open(&path) {
            Ok(Some(segment)) => {
                assert_eq!(
                    segment.scan_all().unwrap().records,
                    expected,
                    "corrupt block {block}"
                );
            }
            Ok(None) => assert!(expected.is_empty(), "corrupt block {block} lost data"),
            Err(e) => panic!("corrupt block {block}: {e}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_open_survives_a_torn_tail_and_answers_queries() {
    use scoop_store::{Store, StoreOptions};
    let dir = scratch("store-torn");
    let db = dir.join("db");
    let options = StoreOptions {
        block_size: BLOCK_SIZE,
        ..StoreOptions::default()
    };
    {
        let mut store = Store::open(&db, options).unwrap();
        let batch: Vec<DurableRecord> = (0..RECORDS).map(record).collect();
        store.append_batch(&batch).unwrap();
        store.commit().unwrap();
    }
    // Tear the tail of the (only) sealed segment: chop the footer and the
    // last, partial block.
    let seg_path = std::fs::read_dir(&db)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "scoop"))
        .expect("one sealed segment");
    let bytes = std::fs::read(&seg_path).unwrap();
    std::fs::write(&seg_path, &bytes[..HEADER_LEN + 4 * BLOCK_SIZE - 3]).unwrap();

    let mut store = Store::open(&db, options).unwrap();
    assert_eq!(store.recovery_report().len(), 1);
    assert!(matches!(
        store.recovery_report()[0].1,
        RecoveryOutcome::Resealed { .. }
    ));
    // Blocks 0..3 survive: 12 records; the 4th block was cut mid-write.
    let all = store.scan_all().unwrap();
    assert_eq!(all.records.len(), 12);
    let hit = store.query_point(record(5).time_ms).unwrap();
    assert_eq!(hit.records.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
