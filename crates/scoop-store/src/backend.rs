//! The disk implementation of `scoop-storage`'s [`PersistenceBackend`].
//!
//! [`DiskBackend`] adapts a [`Store`] to the backend trait: batches of
//! simulator [`StoredReading`]s are converted to [`DurableRecord`]s and
//! appended; `sync` is the commit point (flush + fsync). Attaching it is
//! opt-in — nothing in the simulator constructs one — so the default
//! in-memory behavior and the sim's byte-identity are untouched.

use crate::error::Result;
use crate::store::{Store, StoreOptions};
use scoop_storage::{PersistenceBackend, StoredReading};
use scoop_types::{DurableRecord, ScoopError};
use std::path::Path;

/// A [`PersistenceBackend`] that lands readings in a crash-safe [`Store`].
#[derive(Debug)]
pub struct DiskBackend {
    store: Store,
    records_persisted: u64,
}

impl DiskBackend {
    /// Opens (creating if needed) the store in `dir`.
    pub fn open(dir: &Path, options: StoreOptions) -> Result<Self> {
        Ok(DiskBackend::from_store(Store::open(dir, options)?))
    }

    /// Wraps an already-open store.
    pub fn from_store(store: Store) -> Self {
        DiskBackend {
            store,
            records_persisted: 0,
        }
    }

    /// The underlying store, e.g. to query what was persisted.
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Consumes the backend, returning the store.
    pub fn into_store(self) -> Store {
        self.store
    }
}

impl PersistenceBackend for DiskBackend {
    fn append_batch(&mut self, batch: &[StoredReading]) -> std::result::Result<(), ScoopError> {
        if batch.is_empty() {
            return Ok(());
        }
        let records: Vec<DurableRecord> = batch
            .iter()
            .map(|stored| DurableRecord::from_reading(&stored.reading))
            .collect();
        self.store.append_batch(&records)?;
        self.records_persisted += records.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> std::result::Result<(), ScoopError> {
        self.store.sync()?;
        Ok(())
    }

    fn records_persisted(&self) -> u64 {
        self.records_persisted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_storage::DataBuffer;
    use scoop_types::{Attribute, NodeId, Reading, SimTime, StorageIndexId};

    #[test]
    fn disk_backend_round_trips_simulator_readings() {
        let dir = std::env::temp_dir().join(format!("scoop-store-backend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut buf = DataBuffer::new(16);
        for t in 1..=10u64 {
            buf.store(
                Reading::new(
                    NodeId(t as u16),
                    Attribute::Light,
                    t as i32 * 10,
                    SimTime::from_secs(t),
                ),
                SimTime::from_secs(t),
                StorageIndexId(1),
            );
        }
        let batch: Vec<StoredReading> = buf.iter().copied().collect();

        let mut backend = DiskBackend::open(
            &dir,
            StoreOptions {
                block_size: 8 + 16 * 4,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        backend.append_batch(&batch).unwrap();
        backend.sync().unwrap();
        assert_eq!(backend.records_persisted(), 10);

        let mut store = backend.into_store();
        let all = store.scan_all().unwrap();
        assert_eq!(all.records.len(), 10);
        let readings: Vec<Reading> = all
            .records
            .iter()
            .map(|r| r.to_reading().expect("known attribute"))
            .collect();
        assert!(readings.iter().any(|r| r.value == 50));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
