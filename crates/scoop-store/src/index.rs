//! The two-level time index: sparse block directory + piecewise-linear
//! learned index.
//!
//! Level one is the **block directory** — one [`BlockMeta`] per block, held
//! in memory once a segment is open. Level two is a **learned index** in the
//! PGM style: a greedy shrinking-cone pass fits piecewise-linear segments
//! over `(last_time_ms of block i, i)` with a hard error bound, so a lookup
//! costs one binary search over a handful of line segments, one multiply,
//! and a bounded fence correction against the directory — all in memory.
//! The disk is touched only for the one data block the corrected position
//! names, which is the "at most one block read" property the integration
//! tests assert with the store's block-read counter.
//!
//! [`BTreeRefIndex`] is the dumb-but-obviously-correct reference the learned
//! index is model-tested against (`tests/index_model.rs`).

use crate::block::BlockMeta;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Hard bound on the learned index's prediction error, in blocks. Small so
/// the fence correction stays a short scan; large enough that segments stay
/// few on drifty-but-smooth time series.
pub const DEFAULT_MAX_ERROR: u32 = 4;

/// Answers "which block should I read first for timestamp `t`?" against a
/// block directory. Implementations must agree exactly; the learned index is
/// model-tested against the B-tree reference.
pub trait TimeIndex {
    /// The index of the first block whose last record time is `>= t` — the
    /// partition point of `t` over the directory's `last_time_ms` column.
    /// Returns `dir.len()` when every block ends before `t`.
    fn first_block_for(&self, t: u64, dir: &[BlockMeta]) -> usize;

    /// Short implementation name for stats and test output.
    fn name(&self) -> &'static str;
}

/// One fitted line: positions `start_pos..` are approximated as
/// `start_pos + slope * (key - start_key)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlaSegment {
    /// First key (block `last_time_ms`) the segment covers.
    pub start_key: u64,
    /// Block index at `start_key`.
    pub start_pos: u64,
    /// Blocks per millisecond.
    pub slope: f64,
}

/// The piecewise-linear learned index over the time column.
#[derive(Debug)]
pub struct LearnedTimeIndex {
    segments: Vec<PlaSegment>,
    max_error: u32,
    blocks: usize,
    /// Lookups where the error-bounded window missed and a full binary
    /// search was needed. Stays zero unless the fit is buggy; exported so
    /// tests can prove the bound holds.
    fallback_lookups: AtomicU64,
}

impl LearnedTimeIndex {
    /// Fits the index over a directory with the default error bound.
    pub fn build(dir: &[BlockMeta]) -> Self {
        Self::build_with_error(dir, DEFAULT_MAX_ERROR)
    }

    /// Fits the index with an explicit error bound (`max_error >= 1`).
    ///
    /// Greedy shrinking-cone fit: a segment keeps absorbing points while
    /// some slope keeps *every* absorbed point within `max_error` blocks of
    /// its prediction; when the feasible slope cone empties, the segment is
    /// frozen at the midpoint slope and a new one starts.
    pub fn build_with_error(dir: &[BlockMeta], max_error: u32) -> Self {
        assert!(max_error >= 1);
        let err = max_error as f64;
        let mut segments: Vec<PlaSegment> = Vec::new();
        let mut i = 0usize;
        while i < dir.len() {
            let start_key = dir[i].last_time_ms;
            let start_pos = i as u64;
            // Feasible slope cone; shrinks as points are absorbed.
            let mut lo = 0.0f64;
            let mut hi = f64::INFINITY;
            let mut j = i + 1;
            while j < dir.len() {
                let dx = (dir[j].last_time_ms - start_key) as f64;
                let dy = (j - i) as f64;
                if dx == 0.0 {
                    // Duplicate key: the prediction for this key is fixed at
                    // `start_pos`, so the point fits iff it is within the
                    // error bound of it.
                    if dy > err {
                        break;
                    }
                    j += 1;
                    continue;
                }
                let new_lo = lo.max((dy - err) / dx);
                let new_hi = hi.min((dy + err) / dx);
                if new_lo > new_hi {
                    break;
                }
                lo = new_lo;
                hi = new_hi;
                j += 1;
            }
            let slope = if hi.is_infinite() {
                // Single-point segment (or all duplicates): any slope works.
                lo
            } else {
                (lo + hi) / 2.0
            };
            segments.push(PlaSegment {
                start_key,
                start_pos,
                slope,
            });
            i = j;
        }
        LearnedTimeIndex {
            segments,
            max_error,
            blocks: dir.len(),
            fallback_lookups: AtomicU64::new(0),
        }
    }

    /// Rebuilds from previously serialized parts (see the segment index
    /// region format in `docs/STORE_FORMAT.md`).
    pub fn from_parts(segments: Vec<PlaSegment>, max_error: u32, blocks: usize) -> Self {
        LearnedTimeIndex {
            segments,
            max_error,
            blocks,
            fallback_lookups: AtomicU64::new(0),
        }
    }

    /// The fitted line segments, in key order.
    pub fn segments(&self) -> &[PlaSegment] {
        &self.segments
    }

    /// The error bound the fit guarantees, in blocks.
    pub fn max_error(&self) -> u32 {
        self.max_error
    }

    /// How many lookups fell back to a full binary search (expected: 0).
    pub fn fallback_lookups(&self) -> u64 {
        self.fallback_lookups.load(Ordering::Relaxed)
    }

    /// Predicted block position for `t`, before fence correction. Clamped
    /// to the owning line segment's position span so that a `t` falling in
    /// a key gap (between one segment's last key and the next segment's
    /// first) cannot extrapolate past the next segment's start.
    fn predict(&self, t: u64) -> f64 {
        // Last segment with start_key <= t; t below the first key predicts 0.
        let idx = self.segments.partition_point(|s| s.start_key <= t);
        if idx == 0 {
            return 0.0;
        }
        let seg = &self.segments[idx - 1];
        let raw = seg.start_pos as f64 + seg.slope * (t - seg.start_key) as f64;
        let ceiling = self
            .segments
            .get(idx)
            .map(|next| next.start_pos as f64)
            .unwrap_or(self.blocks.saturating_sub(1) as f64);
        raw.clamp(seg.start_pos as f64, ceiling)
    }
}

/// Exact partition point of `t` over `dir[lo..hi]`'s `last_time_ms` column.
fn partition_in(dir: &[BlockMeta], t: u64, lo: usize, hi: usize) -> usize {
    lo + dir[lo..hi].partition_point(|b| b.last_time_ms < t)
}

impl TimeIndex for LearnedTimeIndex {
    fn first_block_for(&self, t: u64, dir: &[BlockMeta]) -> usize {
        debug_assert_eq!(dir.len(), self.blocks);
        if dir.is_empty() {
            return 0;
        }
        let pred = self.predict(t);
        // The fit bounds the error at the built keys; for a query key
        // between two built keys the true answer can drift one more block,
        // hence the +1.
        let slack = self.max_error as usize + 1;
        let center = pred.round().max(0.0) as usize;
        let lo = center.saturating_sub(slack).min(dir.len());
        let hi = (center + slack + 1).min(dir.len());
        let ans = partition_in(dir, t, lo, hi);
        // The window answer is exact iff both its fences hold; a violated
        // fence means the true partition point lies outside the window.
        let left_ok = ans == 0 || dir[ans - 1].last_time_ms < t;
        let right_ok = ans == dir.len() || dir[ans].last_time_ms >= t;
        if left_ok && right_ok {
            return ans;
        }
        self.fallback_lookups.fetch_add(1, Ordering::Relaxed);
        partition_in(dir, t, 0, dir.len())
    }

    fn name(&self) -> &'static str {
        "learned-pla"
    }
}

/// The reference index: a `BTreeMap` from block `last_time_ms` to the
/// smallest block index carrying it. Obviously correct, used as the model in
/// property tests and available at runtime for A/B checking.
#[derive(Debug, Default)]
pub struct BTreeRefIndex {
    by_last_time: BTreeMap<u64, usize>,
}

impl BTreeRefIndex {
    /// Builds the reference index over a directory.
    pub fn build(dir: &[BlockMeta]) -> Self {
        let mut by_last_time = BTreeMap::new();
        // Iterate in reverse so the smallest index for a duplicate key wins.
        for (i, meta) in dir.iter().enumerate().rev() {
            by_last_time.insert(meta.last_time_ms, i);
        }
        BTreeRefIndex { by_last_time }
    }
}

impl TimeIndex for BTreeRefIndex {
    fn first_block_for(&self, t: u64, dir: &[BlockMeta]) -> usize {
        self.by_last_time
            .range(t..)
            .next()
            .map(|(_, &i)| i)
            .unwrap_or(dir.len())
    }

    fn name(&self) -> &'static str {
        "btree-ref"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir_of(times: &[(u64, u64)]) -> Vec<BlockMeta> {
        times
            .iter()
            .map(|&(first, last)| BlockMeta {
                first_time_ms: first,
                last_time_ms: last,
                count: 1,
            })
            .collect()
    }

    fn assert_agree(dir: &[BlockMeta], probes: impl Iterator<Item = u64>) -> u64 {
        let learned = LearnedTimeIndex::build(dir);
        let reference = BTreeRefIndex::build(dir);
        for t in probes {
            assert_eq!(
                learned.first_block_for(t, dir),
                reference.first_block_for(t, dir),
                "diverged at t={t}"
            );
        }
        learned.fallback_lookups()
    }

    #[test]
    fn empty_and_single_block() {
        let empty: Vec<BlockMeta> = vec![];
        assert_eq!(assert_agree(&empty, [0, 1, u64::MAX].into_iter()), 0);
        let one = dir_of(&[(5, 9)]);
        assert_eq!(assert_agree(&one, 0..20), 0);
    }

    #[test]
    fn linear_directory_fits_one_segment() {
        let dir = dir_of(&(0..1000).map(|i| (i * 10, i * 10 + 9)).collect::<Vec<_>>());
        let learned = LearnedTimeIndex::build(&dir);
        assert_eq!(learned.segments().len(), 1, "perfectly linear keys");
        // A smooth workload must stay inside the error window: no fallbacks.
        assert_eq!(assert_agree(&dir, (0..11_000).step_by(7)), 0);
    }

    #[test]
    fn drifting_rates_and_duplicate_keys() {
        // Bursty: rate changes, plus runs of blocks sharing a last time.
        let mut times = Vec::new();
        let mut t = 0u64;
        for i in 0..300u64 {
            let step = if i % 50 < 25 { 1 } else { 97 };
            t += step;
            times.push((t, t));
            if i % 40 == 0 {
                times.push((t, t)); // duplicate last_time across blocks
            }
        }
        let dir = dir_of(&times);
        // Agreement with the reference is unconditional; the in-memory
        // binary-search fallback may fire on pathological shapes but must
        // stay rare (it never costs disk I/O either way).
        let probes = t + 10;
        let fallbacks = assert_agree(&dir, 0..probes);
        assert!(
            fallbacks * 20 < probes,
            "{fallbacks} fallbacks in {probes} lookups"
        );
    }
}
