//! The multi-segment store: a directory of sealed segments plus one active
//! writer, with point/range query-at-rest and ingest/query statistics.
//!
//! Layout on disk: `<db>/seg-<id>.scoop`, ids strictly increasing. Sealed
//! segments are immutable; compaction (see [`crate::compact`]) replaces a
//! tier of them with one merged segment under a fresh id, via a `.tmp` file
//! and an atomic rename. `open` recovers every unsealed segment (torn tails
//! truncated, survivor resealed) and removes stale `.tmp` leftovers, so a
//! crash at *any* point leaves exactly the committed prefix readable.
//!
//! Query results are returned in the canonical record order (time-major,
//! then node/attribute/value — [`DurableRecord`]'s `Ord`), which makes them
//! independent of segment layout: the same data answers the same bytes
//! before and after compaction, restarts, or re-ingest batching.

use crate::compact::{self, CompactionJob};
use crate::error::{io_err, Result, StoreError};
use crate::segment::{RecoveryOutcome, ScanOutcome, Segment, SegmentWriter, DEFAULT_BLOCK_SIZE};
use scoop_types::DurableRecord;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Tuning knobs for a store. The defaults suit paper-scale runs.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Bytes per data block (the unit of read I/O and durability).
    pub block_size: usize,
    /// Seal the active segment once it holds this many records.
    pub seal_after_records: u64,
    /// Compact when a size tier accumulates this many sealed segments.
    pub compact_tier_segments: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            block_size: DEFAULT_BLOCK_SIZE,
            seal_after_records: 262_144,
            compact_tier_segments: 4,
        }
    }
}

/// A snapshot of store-wide statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Sealed segments currently on disk.
    pub segments: usize,
    /// Data blocks across all sealed segments.
    pub blocks: usize,
    /// Committed records across all sealed segments.
    pub records: u64,
    /// Bytes the store occupies on disk.
    pub disk_bytes: u64,
    /// Piecewise-linear segments across all learned indexes.
    pub pla_segments: usize,
    /// Data blocks fetched from disk since this store was opened.
    pub blocks_read: u64,
    /// Learned-index lookups that fell back to a full binary search
    /// (expected to stay 0; the model tests prove the bound).
    pub index_fallback_lookups: u64,
    /// Wall-clock seconds spent building learned indexes since open.
    pub index_build_secs: f64,
    /// Earliest committed timestamp (ms), 0 when empty.
    pub min_time_ms: u64,
    /// Latest committed timestamp (ms), 0 when empty.
    pub max_time_ms: u64,
}

/// What one `append_batch`/`ingest` call did, for provenance records.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestReport {
    /// Records accepted.
    pub records: u64,
    /// Wall-clock seconds the ingest took (append + seal + fsync).
    pub ingest_secs: f64,
    /// `records / ingest_secs` (0 for an empty batch).
    pub records_per_sec: f64,
}

/// A persistent, crash-safe store of [`DurableRecord`]s.
pub struct Store {
    dir: PathBuf,
    options: StoreOptions,
    /// Sealed segments, in id order. Ids only grow; compaction outputs get
    /// fresh ids, so id order is also recency order.
    segments: Vec<(u64, Segment)>,
    active: Option<(u64, SegmentWriter)>,
    next_id: u64,
    blocks_read: u64,
    /// Counters carried over from segments retired by compaction.
    retired_fallbacks: u64,
    retired_index_build_secs: f64,
    recovery_report: Vec<(PathBuf, RecoveryOutcome)>,
    compaction: Option<CompactionJob>,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.scoop"))
}

fn parse_segment_id(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".scoop")?;
    rest.parse().ok()
}

impl Store {
    /// Opens (creating if absent) the store in `dir`, recovering every
    /// segment and discarding stale compaction temporaries.
    pub fn open(dir: &Path, options: StoreOptions) -> Result<Store> {
        if options.block_size < crate::block::MIN_BLOCK_SIZE {
            return Err(StoreError::InvalidOptions(format!(
                "block size {} is below the minimum {}",
                options.block_size,
                crate::block::MIN_BLOCK_SIZE
            )));
        }
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") && name.starts_with("seg-") {
                // An interrupted compaction; its inputs are all still here.
                std::fs::remove_file(entry.path()).map_err(|e| io_err(&entry.path(), e))?;
            } else if let Some(id) = parse_segment_id(&name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let mut segments = Vec::new();
        let mut recovery_report = Vec::new();
        for id in &ids {
            let path = segment_path(dir, *id);
            if let Some(segment) = Segment::open(&path)? {
                recovery_report.push((path, segment.recovery()));
                segments.push((*id, segment));
            }
        }
        Ok(Store {
            dir: dir.to_path_buf(),
            options,
            segments,
            active: None,
            next_id: ids.last().map(|id| id + 1).unwrap_or(0),
            blocks_read: 0,
            retired_fallbacks: 0,
            retired_index_build_secs: 0.0,
            recovery_report,
            compaction: None,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the store was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// What `open` found, per segment file (sealed vs recovered).
    pub fn recovery_report(&self) -> &[(PathBuf, RecoveryOutcome)] {
        &self.recovery_report
    }

    fn ensure_active(&mut self) -> Result<&mut SegmentWriter> {
        if self.active.is_none() {
            let id = self.next_id;
            self.next_id += 1;
            let writer =
                SegmentWriter::create(&segment_path(&self.dir, id), self.options.block_size)?;
            self.active = Some((id, writer));
        }
        Ok(&mut self.active.as_mut().expect("just ensured").1)
    }

    fn append_one(&mut self, record: DurableRecord) -> Result<()> {
        // A record older than the active segment's tail rolls to a fresh
        // segment: each segment stays internally time-ordered, and queries
        // merge across segments.
        let writer = self.ensure_active()?;
        match writer.append(record) {
            Ok(()) => {}
            Err(StoreError::OutOfOrder { .. }) => {
                self.seal_active()?;
                self.ensure_active()?.append(record)?;
            }
            Err(e) => return Err(e),
        }
        if self
            .active
            .as_ref()
            .map(|(_, w)| w.record_count() >= self.options.seal_after_records)
            .unwrap_or(false)
        {
            self.seal_active()?;
        }
        Ok(())
    }

    /// Appends a batch. The batch is sorted into canonical record order
    /// first, so callers can hand over readings in any order. Returns an
    /// [`IngestReport`] with throughput for provenance.
    pub fn append_batch(&mut self, batch: &[DurableRecord]) -> Result<IngestReport> {
        let started = Instant::now();
        let mut sorted = batch.to_vec();
        sorted.sort_unstable();
        for record in sorted {
            self.append_one(record)?;
        }
        self.sync()?;
        let ingest_secs = started.elapsed().as_secs_f64();
        Ok(IngestReport {
            records: batch.len() as u64,
            ingest_secs,
            records_per_sec: if ingest_secs > 0.0 {
                batch.len() as f64 / ingest_secs
            } else {
                0.0
            },
        })
    }

    /// Makes everything appended so far durable without sealing.
    pub fn sync(&mut self) -> Result<()> {
        if let Some((_, writer)) = &mut self.active {
            writer.sync()?;
        }
        Ok(())
    }

    /// Seals the active segment (no-op when there is none or it is empty).
    pub fn seal_active(&mut self) -> Result<()> {
        if let Some((id, writer)) = self.active.take() {
            if writer.record_count() == 0 {
                let path = segment_path(&self.dir, id);
                drop(writer);
                // An empty writer leaves a header-only file; remove it.
                std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
                return Ok(());
            }
            let segment = writer.seal()?;
            self.segments.push((id, segment));
            self.maybe_compact()?;
        }
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<()> {
        if self.compaction.is_some() {
            return Ok(()); // one at a time; the running job will be finished first
        }
        if compact::plan_tier(&self.segments, self.options.compact_tier_segments).is_some() {
            self.start_compaction()?;
            self.finish_compaction()?;
        }
        Ok(())
    }

    /// Starts a background compaction if a tier is due. Returns `true` when
    /// a job was started. The job merges *sealed, immutable* files by path
    /// in a worker thread; call [`Store::finish_compaction`] to install the
    /// result.
    pub fn start_compaction(&mut self) -> Result<bool> {
        if self.compaction.is_some() {
            return Err(StoreError::Busy("a compaction is already running".into()));
        }
        let Some(tier) = compact::plan_tier(&self.segments, self.options.compact_tier_segments)
        else {
            return Ok(false);
        };
        let output_id = self.next_id;
        self.next_id += 1;
        let inputs: Vec<(u64, PathBuf)> = tier
            .iter()
            .map(|&i| (self.segments[i].0, self.segments[i].1.path().to_path_buf()))
            .collect();
        let output_path = segment_path(&self.dir, output_id);
        self.compaction = Some(compact::start(
            inputs,
            output_id,
            output_path,
            self.options,
        )?);
        Ok(true)
    }

    /// Waits for the running compaction (if any) and swaps the merged
    /// segment in for its inputs. Idempotent when none is running.
    pub fn finish_compaction(&mut self) -> Result<()> {
        let Some(job) = self.compaction.take() else {
            return Ok(());
        };
        let done = job.join()?;
        // Retire the inputs: carry their counters over, then delete their
        // files (the merged output is already durable under its own name).
        let input_ids: std::collections::HashSet<u64> = done.input_ids.iter().copied().collect();
        let mut kept = Vec::new();
        let mut retired_paths = Vec::new();
        for (id, segment) in self.segments.drain(..) {
            if input_ids.contains(&id) {
                self.retired_fallbacks += segment.learned_index().fallback_lookups();
                self.retired_index_build_secs += segment.index_build_secs();
                retired_paths.push(segment.path().to_path_buf());
            } else {
                kept.push((id, segment));
            }
        }
        self.segments = kept;
        for path in &retired_paths {
            std::fs::remove_file(path).map_err(|e| io_err(path, e))?;
        }
        self.segments.push((done.output_id, done.segment));
        self.segments.sort_by_key(|(id, _)| *id);
        Ok(())
    }

    /// Merges every sealed segment into one, synchronously. Used by tests
    /// and the CLI's explicit `--compact`.
    pub fn compact_all_blocking(&mut self) -> Result<bool> {
        self.seal_active()?;
        if self.segments.len() < 2 {
            return Ok(false);
        }
        if self.compaction.is_some() {
            return Err(StoreError::Busy("a compaction is already running".into()));
        }
        let output_id = self.next_id;
        self.next_id += 1;
        let inputs: Vec<(u64, PathBuf)> = self
            .segments
            .iter()
            .map(|(id, seg)| (*id, seg.path().to_path_buf()))
            .collect();
        let output_path = segment_path(&self.dir, output_id);
        self.compaction = Some(compact::start(
            inputs,
            output_id,
            output_path,
            self.options,
        )?);
        self.finish_compaction()?;
        Ok(true)
    }

    /// Commits buffered writes so queries see them: seals the active
    /// segment. Queries are served from sealed segments only.
    pub fn commit(&mut self) -> Result<()> {
        self.seal_active()
    }

    fn merged_query<F>(&mut self, mut per_segment: F) -> Result<ScanOutcome>
    where
        F: FnMut(&Segment) -> Result<ScanOutcome>,
    {
        self.commit()?;
        let mut merged = ScanOutcome::default();
        for (_, segment) in &self.segments {
            let outcome = per_segment(segment)?;
            merged.blocks_read += outcome.blocks_read;
            merged.records.extend(outcome.records);
        }
        self.blocks_read += merged.blocks_read;
        merged.records.sort_unstable();
        Ok(merged)
    }

    /// All records with timestamp exactly `t`, in canonical order.
    pub fn query_point(&mut self, t: u64) -> Result<ScanOutcome> {
        self.merged_query(|segment| {
            if segment.record_count() > 0
                && (t < segment.min_time_ms() || t > segment.max_time_ms())
            {
                return Ok(ScanOutcome::default());
            }
            segment.query_point(t)
        })
    }

    /// All records with `t0 <= time <= t1`, in canonical order.
    pub fn query_range(&mut self, t0: u64, t1: u64) -> Result<ScanOutcome> {
        self.merged_query(|segment| {
            if t1 < segment.min_time_ms() || t0 > segment.max_time_ms() {
                return Ok(ScanOutcome::default());
            }
            segment.query_range(t0, t1)
        })
    }

    /// Every committed record, in canonical order.
    pub fn scan_all(&mut self) -> Result<ScanOutcome> {
        self.merged_query(|segment| segment.scan_all())
    }

    /// Store-wide statistics.
    pub fn stats(&self) -> Result<StoreStats> {
        let mut stats = StoreStats {
            segments: self.segments.len(),
            blocks_read: self.blocks_read,
            index_fallback_lookups: self.retired_fallbacks,
            index_build_secs: self.retired_index_build_secs,
            min_time_ms: u64::MAX,
            ..StoreStats::default()
        };
        for (_, segment) in &self.segments {
            stats.blocks += segment.block_count();
            stats.records += segment.record_count();
            stats.disk_bytes += segment.disk_bytes()?;
            stats.pla_segments += segment.learned_index().segments().len();
            stats.index_fallback_lookups += segment.learned_index().fallback_lookups();
            stats.index_build_secs += segment.index_build_secs();
            if segment.record_count() > 0 {
                stats.min_time_ms = stats.min_time_ms.min(segment.min_time_ms());
                stats.max_time_ms = stats.max_time_ms.max(segment.max_time_ms());
            }
        }
        if stats.records == 0 {
            stats.min_time_ms = 0;
        }
        Ok(stats)
    }

    /// The sealed segments, for inspection in tests.
    pub fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter().map(|(_, s)| s)
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best effort: don't leave a joinable thread behind.
        if let Some(job) = self.compaction.take() {
            let _ = job.join();
        }
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("segments", &self.segments.len())
            .field("active", &self.active.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::NodeId;

    fn record(t: u64, node: u16, v: i32) -> DurableRecord {
        DurableRecord {
            time_ms: t,
            node: NodeId(node),
            attribute: 0,
            value: v,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scoop-store-storetest-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_options() -> StoreOptions {
        StoreOptions {
            block_size: 8 + 16 * 4,
            seal_after_records: 32,
            compact_tier_segments: 1000, // effectively off unless asked
        }
    }

    #[test]
    fn ingest_restart_query() {
        let dir = tmp_dir("restart");
        {
            let mut store = Store::open(&dir, small_options()).unwrap();
            let batch: Vec<DurableRecord> = (0..100u64)
                .map(|t| record(t, (t % 7) as u16, t as i32))
                .collect();
            let report = store.append_batch(&batch).unwrap();
            assert_eq!(report.records, 100);
            store.commit().unwrap();
        }
        let mut store = Store::open(&dir, small_options()).unwrap();
        assert!(store
            .recovery_report()
            .iter()
            .all(|(_, r)| *r == RecoveryOutcome::Sealed));
        let hit = store.query_point(42).unwrap();
        assert_eq!(hit.records.len(), 1);
        assert_eq!(hit.records[0].value, 42);
        let range = store.query_range(10, 19).unwrap();
        assert_eq!(range.records.len(), 10);
        let all = store.scan_all().unwrap();
        assert_eq!(all.records.len(), 100);
        assert!(all.records.windows(2).all(|w| w[0] <= w[1]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_batches_roll_segments_and_still_answer() {
        let dir = tmp_dir("rolling");
        let mut store = Store::open(&dir, small_options()).unwrap();
        store
            .append_batch(
                &(50..100u64)
                    .map(|t| record(t, 1, t as i32))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        store.commit().unwrap();
        // Older data arrives later — lands in a second segment.
        store
            .append_batch(
                &(0..50u64)
                    .map(|t| record(t, 2, t as i32))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let all = store.scan_all().unwrap();
        assert_eq!(all.records.len(), 100);
        assert!(all.records.windows(2).all(|w| w[0] <= w[1]));
        let hit = store.query_point(25).unwrap();
        assert_eq!(hit.records.len(), 1);
        assert_eq!(hit.records[0].node, NodeId(2));

        // Compaction folds both segments into one; answers are unchanged.
        let before = store.scan_all().unwrap().records;
        assert!(store.compact_all_blocking().unwrap());
        let stats = store.stats().unwrap();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.records, 100);
        let after = store.scan_all().unwrap().records;
        assert_eq!(before, after);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn point_lookup_reads_at_most_one_block_per_segment() {
        let dir = tmp_dir("onetouch");
        let mut store = Store::open(&dir, small_options()).unwrap();
        let batch: Vec<DurableRecord> = (0..500u64).map(|t| record(t * 3, 1, t as i32)).collect();
        store.append_batch(&batch).unwrap();
        store.commit().unwrap();
        store.compact_all_blocking().unwrap();
        assert_eq!(store.stats().unwrap().segments, 1);
        for t in [0u64, 3, 300, 1497] {
            let hit = store.query_point(t).unwrap();
            assert_eq!(hit.records.len(), 1, "t={t}");
            assert!(
                hit.blocks_read <= 1,
                "t={t} read {} blocks",
                hit.blocks_read
            );
        }
        // Absent timestamps may touch one block (the candidate) at most.
        for t in [1u64, 299, 5000] {
            let miss = store.query_point(t).unwrap();
            assert!(miss.records.is_empty());
            assert!(miss.blocks_read <= 1);
        }
        assert_eq!(store.stats().unwrap().index_fallback_lookups, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
