//! Size-tiered compaction of sealed segments.
//!
//! Sealed segments are immutable files, which makes compaction safely
//! concurrent with reads and writes: a worker thread re-opens the input
//! files *by path*, merges their records in canonical order, writes the
//! result to `seg-<id>.scoop.tmp`, seals it, and atomically renames it into
//! place. A crash at any point is harmless — `Store::open` discards `.tmp`
//! leftovers and the inputs are only deleted after the output is durable.
//!
//! Planning is **size-tiered**: segments are bucketed by `log4(bytes)` and a
//! tier is merged only once it holds `compact_tier_segments` members. Each
//! record therefore moves up a tier (×4 in size) per merge it participates
//! in, so a record is rewritten at most `O(log4(total))` times — the bounded
//! write amplification the issue asks for, as opposed to "always merge
//! everything", which rewrites old data on every pass.

use crate::error::{corrupt, io_err, Result, StoreError};
use crate::segment::{Segment, SegmentWriter};
use crate::store::StoreOptions;
use std::path::PathBuf;
use std::thread::JoinHandle;

/// A finished merge, ready to install.
pub struct CompactionResult {
    /// Ids of the segments that were merged (to retire).
    pub input_ids: Vec<u64>,
    /// Id of the merged output segment.
    pub output_id: u64,
    /// The merged segment, already renamed into place and sealed.
    pub segment: Segment,
    /// Records written to the output.
    pub records_written: u64,
}

/// A running background compaction.
pub struct CompactionJob {
    handle: JoinHandle<Result<CompactionResult>>,
}

impl CompactionJob {
    /// Blocks until the merge finishes and returns the result.
    pub fn join(self) -> Result<CompactionResult> {
        self.handle
            .join()
            .map_err(|_| StoreError::Busy("compaction thread panicked".into()))?
    }

    /// Whether the worker has finished (join will not block).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Picks the indices (into `segments`) of one size tier that is due for
/// merging, or `None`. Tiers are `log4` buckets of on-disk size; the
/// *smallest* due tier wins so fresh little segments fold together before
/// anything big is rewritten.
pub fn plan_tier(segments: &[(u64, Segment)], tier_threshold: usize) -> Option<Vec<usize>> {
    if tier_threshold == 0 || segments.len() < 2 {
        return None;
    }
    let mut tiers: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
    for (i, (_, segment)) in segments.iter().enumerate() {
        let bytes = segment.disk_bytes().unwrap_or(0).max(1);
        let tier = bytes.ilog2() / 2; // log4
        tiers.entry(tier).or_default().push(i);
    }
    tiers
        .into_values()
        .find(|members| members.len() >= tier_threshold.max(2))
}

/// Spawns the merge worker. `inputs` are `(id, path)` of sealed segments;
/// the worker re-opens them independently, so the caller's `Segment`
/// handles stay untouched and readable throughout.
pub fn start(
    inputs: Vec<(u64, PathBuf)>,
    output_id: u64,
    output_path: PathBuf,
    options: StoreOptions,
) -> Result<CompactionJob> {
    let handle = std::thread::Builder::new()
        .name("scoop-store-compact".into())
        .spawn(move || merge(inputs, output_id, output_path, options))
        .map_err(|e| StoreError::Busy(format!("cannot spawn compaction thread: {e}")))?;
    Ok(CompactionJob { handle })
}

fn merge(
    inputs: Vec<(u64, PathBuf)>,
    output_id: u64,
    output_path: PathBuf,
    options: StoreOptions,
) -> Result<CompactionResult> {
    let mut input_ids = Vec::with_capacity(inputs.len());
    let mut records = Vec::new();
    for (id, path) in &inputs {
        let segment =
            Segment::open(path)?.ok_or_else(|| corrupt(path, "compaction input vanished"))?;
        records.extend(segment.scan_all()?.records);
        input_ids.push(*id);
    }
    // Canonical order (time, node, attribute, value); stable for duplicates
    // because inputs are visited in id order and each is already sorted.
    records.sort();

    let tmp_path = output_path.with_extension("scoop.tmp");
    let mut writer = SegmentWriter::create(&tmp_path, options.block_size)?;
    writer.append_batch(&records)?;
    let records_written = writer.record_count();
    let sealed_tmp = writer.seal()?;
    drop(sealed_tmp);
    std::fs::rename(&tmp_path, &output_path).map_err(|e| io_err(&tmp_path, e))?;
    let parent = output_path
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let dir = std::fs::File::open(&parent).map_err(|e| io_err(&parent, e))?;
    dir.sync_all().map_err(|e| io_err(&parent, e))?;

    let segment = Segment::open(&output_path)?
        .ok_or_else(|| corrupt(&output_path, "merged segment vanished after rename"))?;
    Ok(CompactionResult {
        input_ids,
        output_id,
        segment,
        records_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{DurableRecord, NodeId};
    use std::path::Path;

    fn record(t: u64, v: i32) -> DurableRecord {
        DurableRecord {
            time_ms: t,
            node: NodeId(1),
            attribute: 0,
            value: v,
        }
    }

    fn sealed_segment(path: &Path, times: std::ops::Range<u64>) -> Segment {
        let mut w = SegmentWriter::create(path, 8 + 16 * 4).unwrap();
        for t in times {
            w.append(record(t, t as i32)).unwrap();
        }
        w.seal().unwrap()
    }

    #[test]
    fn plan_requires_a_full_tier() {
        let dir = std::env::temp_dir().join(format!("scoop-compact-plan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut segments = Vec::new();
        for i in 0..3u64 {
            let path = dir.join(format!("seg-{i}.scoop"));
            segments.push((i, sealed_segment(&path, (i * 10)..(i * 10 + 10))));
        }
        assert!(
            plan_tier(&segments, 4).is_none(),
            "3 same-size < threshold 4"
        );
        let plan = plan_tier(&segments, 3).expect("3 same-size segments merge");
        assert_eq!(plan.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_preserves_every_record_in_order() {
        let dir = std::env::temp_dir().join(format!("scoop-compact-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Overlapping time ranges on purpose.
        let a = dir.join("seg-00000000.scoop");
        let b = dir.join("seg-00000001.scoop");
        sealed_segment(&a, 0..40);
        sealed_segment(&b, 20..60);
        let out = dir.join("seg-00000002.scoop");
        let job = start(
            vec![(0, a.clone()), (1, b.clone())],
            2,
            out.clone(),
            StoreOptions {
                block_size: 8 + 16 * 4,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let result = job.join().unwrap();
        // The log is append-only and keeps duplicates: 40 + 40 records.
        assert_eq!(result.records_written, 80);
        assert_eq!(result.segment.record_count(), 80);
        let all = result.segment.scan_all().unwrap();
        assert!(all.records.windows(2).all(|w| w[0] <= w[1]));
        assert!(out.exists());
        assert!(!out.with_extension("scoop.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
