//! One segment file: header, data blocks, index region, committing footer.
//!
//! Layout (all integers little-endian; see `docs/STORE_FORMAT.md`):
//!
//! ```text
//! [ header 32 B ][ block 0 ][ block 1 ] ... [ index region ][ footer 64 B ]
//! ```
//!
//! The footer is the **commit record**: it is written last, covered by its
//! own CRC, and fsync'd. A segment with a valid footer is *sealed* — its
//! index region is trusted (after a CRC check) and data blocks are verified
//! lazily as they are read. A segment without a valid footer is *unsealed*:
//! a crash interrupted the writer, so `open` scans the data region block by
//! block, keeps the longest valid time-ordered prefix, truncates everything
//! after it (the torn tail), and seals the survivor. Corruption is always a
//! typed [`StoreError`], never a panic.

use crate::block::{
    decode_block, encode_block, meta_of, records_per_block, BlockMeta, MIN_BLOCK_SIZE,
};
use crate::crc::crc32;
use crate::error::{corrupt, io_err, Result, StoreError};
use crate::index::{BTreeRefIndex, LearnedTimeIndex, PlaSegment, TimeIndex, DEFAULT_MAX_ERROR};
use scoop_types::DurableRecord;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// First 8 bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SCOOPSG1";
/// First 8 bytes of the footer.
pub const FOOTER_MAGIC: &[u8; 8] = b"SCOOPFT1";
/// Bytes of the file header.
pub const HEADER_LEN: usize = 32;
/// Bytes of the committing footer.
pub const FOOTER_LEN: usize = 64;
/// The on-disk schema version this build reads and writes.
pub const SCHEMA_VERSION: u32 = 1;
/// Default block size: one page.
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

const INDEX_PREFIX_LEN: usize = 16;
const DIR_ENTRY_LEN: usize = 20;
const PLA_ENTRY_LEN: usize = 24;

/// What `Segment::open` found on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Valid footer: the segment was cleanly sealed.
    Sealed,
    /// No valid footer: the committed block prefix was kept, `dropped_bytes`
    /// of torn tail were truncated, and the segment was sealed in place.
    Resealed {
        /// Bytes removed from the tail of the file.
        dropped_bytes: u64,
    },
}

/// Records plus the I/O cost of fetching them; callers accumulate the cost
/// into the store-level block-read counter.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Matching records in time order.
    pub records: Vec<DurableRecord>,
    /// Data blocks fetched from disk to answer this.
    pub blocks_read: u64,
}

fn sync_dir_of(path: &Path) -> Result<()> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let dir = File::open(parent).map_err(|e| io_err(parent, e))?;
    dir.sync_all().map_err(|e| io_err(parent, e))
}

fn encode_header(block_size: usize) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(SEGMENT_MAGIC);
    header[8..12].copy_from_slice(&SCHEMA_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&(block_size as u32).to_le_bytes());
    // bytes 16..24 reserved, zero
    let crc = crc32(&header[0..24]);
    header[24..28].copy_from_slice(&crc.to_le_bytes());
    header
}

fn decode_header(header: &[u8; HEADER_LEN], path: &Path) -> Result<usize> {
    if &header[0..8] != SEGMENT_MAGIC {
        return Err(corrupt(path, "bad segment magic (not a scoop-store file?)"));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != SCHEMA_VERSION {
        return Err(StoreError::SchemaVersion {
            path: path.to_path_buf(),
            found: version,
            expected: SCHEMA_VERSION,
        });
    }
    let stored_crc = u32::from_le_bytes(header[24..28].try_into().expect("4 bytes"));
    if crc32(&header[0..24]) != stored_crc {
        return Err(corrupt(path, "header checksum mismatch"));
    }
    let block_size = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
    if !(MIN_BLOCK_SIZE..=(1 << 24)).contains(&block_size) {
        return Err(corrupt(
            path,
            format!("implausible block size {block_size}"),
        ));
    }
    Ok(block_size)
}

struct Footer {
    record_count: u64,
    block_count: u64,
    index_offset: u64,
    index_len: u64,
    min_time_ms: u64,
    max_time_ms: u64,
    index_crc: u32,
}

fn encode_footer(f: &Footer) -> [u8; FOOTER_LEN] {
    let mut out = [0u8; FOOTER_LEN];
    out[0..8].copy_from_slice(FOOTER_MAGIC);
    out[8..16].copy_from_slice(&f.record_count.to_le_bytes());
    out[16..24].copy_from_slice(&f.block_count.to_le_bytes());
    out[24..32].copy_from_slice(&f.index_offset.to_le_bytes());
    out[32..40].copy_from_slice(&f.index_len.to_le_bytes());
    out[40..48].copy_from_slice(&f.min_time_ms.to_le_bytes());
    out[48..56].copy_from_slice(&f.max_time_ms.to_le_bytes());
    out[56..60].copy_from_slice(&f.index_crc.to_le_bytes());
    let crc = crc32(&out[0..60]);
    out[60..64].copy_from_slice(&crc.to_le_bytes());
    out
}

/// `None` means "this is not a (complete, intact) footer" — the caller falls
/// through to torn-tail recovery, so a damaged footer is never itself fatal.
fn decode_footer(bytes: &[u8; FOOTER_LEN]) -> Option<Footer> {
    if &bytes[0..8] != FOOTER_MAGIC {
        return None;
    }
    let stored_crc = u32::from_le_bytes(bytes[60..64].try_into().expect("4 bytes"));
    if crc32(&bytes[0..60]) != stored_crc {
        return None;
    }
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    Some(Footer {
        record_count: u64_at(8),
        block_count: u64_at(16),
        index_offset: u64_at(24),
        index_len: u64_at(32),
        min_time_ms: u64_at(40),
        max_time_ms: u64_at(48),
        index_crc: u32::from_le_bytes(bytes[56..60].try_into().expect("4 bytes")),
    })
}

fn encode_index(dir: &[BlockMeta], pla: &LearnedTimeIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        INDEX_PREFIX_LEN + dir.len() * DIR_ENTRY_LEN + pla.segments().len() * PLA_ENTRY_LEN,
    );
    out.extend_from_slice(&(dir.len() as u32).to_le_bytes());
    out.extend_from_slice(&(pla.segments().len() as u32).to_le_bytes());
    out.extend_from_slice(&pla.max_error().to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    for meta in dir {
        out.extend_from_slice(&meta.first_time_ms.to_le_bytes());
        out.extend_from_slice(&meta.last_time_ms.to_le_bytes());
        out.extend_from_slice(&meta.count.to_le_bytes());
    }
    for seg in pla.segments() {
        out.extend_from_slice(&seg.start_key.to_le_bytes());
        out.extend_from_slice(&seg.start_pos.to_le_bytes());
        out.extend_from_slice(&seg.slope.to_bits().to_le_bytes());
    }
    out
}

fn decode_index(bytes: &[u8], path: &Path) -> Result<(Vec<BlockMeta>, LearnedTimeIndex)> {
    if bytes.len() < INDEX_PREFIX_LEN {
        return Err(corrupt(path, "index region shorter than its prefix"));
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let dir_count = u32_at(0) as usize;
    let pla_count = u32_at(4) as usize;
    let max_error = u32_at(8);
    let expected = INDEX_PREFIX_LEN + dir_count * DIR_ENTRY_LEN + pla_count * PLA_ENTRY_LEN;
    if bytes.len() != expected || max_error == 0 {
        return Err(corrupt(
            path,
            format!(
                "index region is {} bytes, counts say {expected} (dir {dir_count}, pla {pla_count}, max_err {max_error})",
                bytes.len()
            ),
        ));
    }
    let mut dir = Vec::with_capacity(dir_count);
    let mut offset = INDEX_PREFIX_LEN;
    for _ in 0..dir_count {
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        dir.push(BlockMeta {
            first_time_ms: u64_at(offset),
            last_time_ms: u64_at(offset + 8),
            count: u32_at(offset + 16),
        });
        offset += DIR_ENTRY_LEN;
    }
    let mut segments = Vec::with_capacity(pla_count);
    for _ in 0..pla_count {
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        segments.push(PlaSegment {
            start_key: u64_at(offset),
            start_pos: u64_at(offset + 8),
            slope: f64::from_bits(u64_at(offset + 16)),
        });
        offset += PLA_ENTRY_LEN;
    }
    Ok((
        dir.clone(),
        LearnedTimeIndex::from_parts(segments, max_error, dir.len()),
    ))
}

/// Appends time-ordered records into a new segment file. Full blocks are
/// written as they fill; `sync` makes the written prefix durable mid-stream;
/// `seal` writes the index and the committing footer.
pub struct SegmentWriter {
    path: PathBuf,
    file: File,
    block_size: usize,
    pending: Vec<DurableRecord>,
    dir: Vec<BlockMeta>,
    record_count: u64,
    last_time_ms: Option<u64>,
    min_time_ms: u64,
    max_time_ms: u64,
}

impl SegmentWriter {
    /// Creates (or truncates) the file at `path` and writes the header.
    pub fn create(path: &Path, block_size: usize) -> Result<Self> {
        if block_size < MIN_BLOCK_SIZE {
            return Err(StoreError::InvalidOptions(format!(
                "block size {block_size} is below the minimum {MIN_BLOCK_SIZE}"
            )));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.write_all(&encode_header(block_size))
            .map_err(|e| io_err(path, e))?;
        Ok(SegmentWriter {
            path: path.to_path_buf(),
            file,
            block_size,
            pending: Vec::new(),
            dir: Vec::new(),
            record_count: 0,
            last_time_ms: None,
            min_time_ms: 0,
            max_time_ms: 0,
        })
    }

    /// Records accepted so far.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Appends one record; must not go backwards in time.
    pub fn append(&mut self, record: DurableRecord) -> Result<()> {
        if let Some(last) = self.last_time_ms {
            if record.time_ms < last {
                return Err(StoreError::OutOfOrder {
                    last_time_ms: last,
                    got_time_ms: record.time_ms,
                });
            }
        } else {
            self.min_time_ms = record.time_ms;
        }
        self.last_time_ms = Some(record.time_ms);
        self.max_time_ms = record.time_ms;
        self.pending.push(record);
        self.record_count += 1;
        if self.pending.len() == records_per_block(self.block_size) {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Appends a batch (must already be sorted; [`DurableRecord`] sorts
    /// time-major, so `batch.sort_unstable()` is enough).
    pub fn append_batch(&mut self, batch: &[DurableRecord]) -> Result<()> {
        for &record in batch {
            self.append(record)?;
        }
        Ok(())
    }

    fn flush_pending(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let bytes = encode_block(&self.pending, self.block_size);
        self.file
            .write_all(&bytes)
            .map_err(|e| io_err(&self.path, e))?;
        self.dir.push(meta_of(&self.pending));
        self.pending.clear();
        Ok(())
    }

    /// Makes everything appended so far durable. A partial block is flushed
    /// as a short block; the file stays unsealed (no footer) so a crash
    /// after this point loses nothing already synced.
    pub fn sync(&mut self) -> Result<()> {
        self.flush_pending()?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }

    /// Flushes, writes the index region and the committing footer, and
    /// fsyncs file and directory. Returns the opened (sealed) segment.
    pub fn seal(mut self) -> Result<Segment> {
        self.flush_pending()?;
        let build_started = std::time::Instant::now();
        let learned = LearnedTimeIndex::build_with_error(&self.dir, DEFAULT_MAX_ERROR);
        let index_bytes = encode_index(&self.dir, &learned);
        let index_build_secs = build_started.elapsed().as_secs_f64();
        let index_offset = (HEADER_LEN + self.dir.len() * self.block_size) as u64;
        let footer = Footer {
            record_count: self.record_count,
            block_count: self.dir.len() as u64,
            index_offset,
            index_len: index_bytes.len() as u64,
            min_time_ms: self.min_time_ms,
            max_time_ms: self.max_time_ms,
            index_crc: crc32(&index_bytes),
        };
        self.file
            .write_all(&index_bytes)
            .map_err(|e| io_err(&self.path, e))?;
        self.file
            .write_all(&encode_footer(&footer))
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        sync_dir_of(&self.path)?;
        let path = self.path;
        drop(self.file);
        let mut segment = Segment::open(&path)?
            .ok_or_else(|| corrupt(&path, "sealed segment vanished on reopen"))?;
        segment.index_build_secs = index_build_secs;
        Ok(segment)
    }
}

/// A readable segment: the block directory and learned index live in
/// memory; data blocks are fetched (and CRC-checked) on demand.
pub struct Segment {
    path: PathBuf,
    file: File,
    block_size: usize,
    dir: Vec<BlockMeta>,
    learned: LearnedTimeIndex,
    reference: BTreeRefIndex,
    record_count: u64,
    min_time_ms: u64,
    max_time_ms: u64,
    recovery: RecoveryOutcome,
    index_build_secs: f64,
}

impl Segment {
    /// Opens a segment, running torn-tail recovery if it is unsealed.
    ///
    /// Returns `Ok(None)` when the file holds no committed data at all (a
    /// crash before the first block was durable) — the file is removed, as
    /// an empty segment has nothing to say. Files that do not look like
    /// scoop-store segments are *not* removed; they surface as
    /// [`StoreError::Corrupt`].
    pub fn open(path: &Path) -> Result<Option<Segment>> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        let file_len = file.metadata().map_err(|e| io_err(path, e))?.len() as usize;

        if file_len < HEADER_LEN {
            // A create() crashed mid-header. Only delete if what *was*
            // written is a prefix of our magic — anything else is a foreign
            // file we must not destroy.
            let mut prefix = vec![0u8; file_len.min(SEGMENT_MAGIC.len())];
            file.read_exact(&mut prefix).map_err(|e| io_err(path, e))?;
            if prefix == SEGMENT_MAGIC[..prefix.len()] {
                drop(file);
                std::fs::remove_file(path).map_err(|e| io_err(path, e))?;
                return Ok(None);
            }
            return Err(corrupt(path, "shorter than a header and not ours"));
        }

        let mut header = [0u8; HEADER_LEN];
        file.read_exact_at(&mut header, 0)
            .map_err(|e| io_err(path, e))?;
        let block_size = decode_header(&header, path)?;

        if file_len >= HEADER_LEN + FOOTER_LEN {
            let mut footer_bytes = [0u8; FOOTER_LEN];
            file.read_exact_at(&mut footer_bytes, (file_len - FOOTER_LEN) as u64)
                .map_err(|e| io_err(path, e))?;
            if let Some(footer) = decode_footer(&footer_bytes) {
                return Self::open_sealed(path, file, block_size, file_len, footer).map(Some);
            }
        }
        Self::recover_unsealed(path, file, block_size, file_len)
    }

    fn open_sealed(
        path: &Path,
        file: File,
        block_size: usize,
        file_len: usize,
        footer: Footer,
    ) -> Result<Segment> {
        let data_end = HEADER_LEN as u64 + footer.block_count * block_size as u64;
        if footer.index_offset != data_end
            || footer.index_offset + footer.index_len + FOOTER_LEN as u64 != file_len as u64
        {
            return Err(corrupt(path, "footer geometry disagrees with file length"));
        }
        let mut index_bytes = vec![0u8; footer.index_len as usize];
        file.read_exact_at(&mut index_bytes, footer.index_offset)
            .map_err(|e| io_err(path, e))?;
        if crc32(&index_bytes) != footer.index_crc {
            return Err(corrupt(path, "index region checksum mismatch"));
        }
        let (dir, learned) = decode_index(&index_bytes, path)?;
        if dir.len() as u64 != footer.block_count {
            return Err(corrupt(path, "directory length disagrees with footer"));
        }
        let total: u64 = dir.iter().map(|m| m.count as u64).sum();
        if total != footer.record_count {
            return Err(corrupt(
                path,
                "directory record counts disagree with footer",
            ));
        }
        let reference = BTreeRefIndex::build(&dir);
        Ok(Segment {
            path: path.to_path_buf(),
            file,
            block_size,
            dir,
            learned,
            reference,
            record_count: footer.record_count,
            min_time_ms: footer.min_time_ms,
            max_time_ms: footer.max_time_ms,
            recovery: RecoveryOutcome::Sealed,
            index_build_secs: 0.0,
        })
    }

    fn recover_unsealed(
        path: &Path,
        mut file: File,
        block_size: usize,
        file_len: usize,
    ) -> Result<Option<Segment>> {
        let mut dir = Vec::new();
        let mut prev_last = 0u64;
        let mut offset = HEADER_LEN;
        let mut buf = vec![0u8; block_size];
        while offset + block_size <= file_len {
            if file.read_exact_at(&mut buf, offset as u64).is_err() {
                break;
            }
            let records = match decode_block(&buf, block_size, path, dir.len()) {
                Ok(r) => r,
                Err(_) => break, // torn or corrupt tail starts here
            };
            let in_order = records.windows(2).all(|w| w[0].time_ms <= w[1].time_ms);
            let meta = meta_of(&records);
            if !in_order || (!dir.is_empty() && meta.first_time_ms < prev_last) {
                break; // bytes validate but violate the log's time order
            }
            prev_last = meta.last_time_ms;
            dir.push(meta);
            offset += block_size;
        }

        if dir.is_empty() {
            drop(file);
            std::fs::remove_file(path).map_err(|e| io_err(path, e))?;
            sync_dir_of(path)?;
            return Ok(None);
        }

        let dropped_bytes = (file_len - offset) as u64;
        file.set_len(offset as u64).map_err(|e| io_err(path, e))?;

        // Seal the survivor: rebuild the index from the scanned directory
        // and write it plus a fresh footer.
        let build_started = std::time::Instant::now();
        let learned = LearnedTimeIndex::build_with_error(&dir, DEFAULT_MAX_ERROR);
        let index_bytes = encode_index(&dir, &learned);
        let index_build_secs = build_started.elapsed().as_secs_f64();
        let record_count: u64 = dir.iter().map(|m| m.count as u64).sum();
        let footer = Footer {
            record_count,
            block_count: dir.len() as u64,
            index_offset: offset as u64,
            index_len: index_bytes.len() as u64,
            min_time_ms: dir[0].first_time_ms,
            max_time_ms: dir[dir.len() - 1].last_time_ms,
            index_crc: crc32(&index_bytes),
        };
        file.seek(SeekFrom::Start(offset as u64))
            .map_err(|e| io_err(path, e))?;
        file.write_all(&index_bytes).map_err(|e| io_err(path, e))?;
        file.write_all(&encode_footer(&footer))
            .map_err(|e| io_err(path, e))?;
        file.sync_all().map_err(|e| io_err(path, e))?;
        sync_dir_of(path)?;

        let reference = BTreeRefIndex::build(&dir);
        Ok(Some(Segment {
            path: path.to_path_buf(),
            file,
            block_size,
            dir,
            learned,
            reference,
            record_count,
            min_time_ms: footer.min_time_ms,
            max_time_ms: footer.max_time_ms,
            recovery: RecoveryOutcome::Resealed { dropped_bytes },
            index_build_secs,
        }))
    }

    /// The file this segment reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What `open` found (cleanly sealed, or recovered and resealed).
    pub fn recovery(&self) -> RecoveryOutcome {
        self.recovery
    }

    /// Committed records in this segment.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Data blocks in this segment.
    pub fn block_count(&self) -> usize {
        self.dir.len()
    }

    /// Timestamp of the first committed record (ms).
    pub fn min_time_ms(&self) -> u64 {
        self.min_time_ms
    }

    /// Timestamp of the last committed record (ms).
    pub fn max_time_ms(&self) -> u64 {
        self.max_time_ms
    }

    /// The in-memory block directory.
    pub fn dir(&self) -> &[BlockMeta] {
        &self.dir
    }

    /// The learned index (for stats and A/B checks).
    pub fn learned_index(&self) -> &LearnedTimeIndex {
        &self.learned
    }

    /// Wall-clock seconds spent fitting + encoding this segment's index
    /// (zero when the index was loaded from disk rather than built).
    pub fn index_build_secs(&self) -> f64 {
        self.index_build_secs
    }

    /// The reference index (for A/B checks).
    pub fn reference_index(&self) -> &BTreeRefIndex {
        &self.reference
    }

    /// Bytes this segment occupies on disk.
    pub fn disk_bytes(&self) -> Result<u64> {
        Ok(self
            .file
            .metadata()
            .map_err(|e| io_err(&self.path, e))?
            .len())
    }

    /// Reads and validates one data block.
    pub fn read_block(&self, index: usize) -> Result<Vec<DurableRecord>> {
        let mut buf = vec![0u8; self.block_size];
        let offset = (HEADER_LEN + index * self.block_size) as u64;
        self.file
            .read_exact_at(&mut buf, offset)
            .map_err(|e| io_err(&self.path, e))?;
        decode_block(&buf, self.block_size, &self.path, index)
    }

    /// All records with timestamp exactly `t`.
    pub fn query_point(&self, t: u64) -> Result<ScanOutcome> {
        self.scan_matching(t, t, &self.learned)
    }

    /// All records with `t0 <= time_ms <= t1`.
    pub fn query_range(&self, t0: u64, t1: u64) -> Result<ScanOutcome> {
        self.scan_matching(t0, t1, &self.learned)
    }

    /// Range scan steered by an explicit index implementation (the model
    /// tests drive both the learned and the reference index through here).
    pub fn scan_matching(&self, t0: u64, t1: u64, index: &dyn TimeIndex) -> Result<ScanOutcome> {
        let mut outcome = ScanOutcome::default();
        if t1 < t0 {
            return Ok(outcome);
        }
        let mut i = index.first_block_for(t0, &self.dir);
        while i < self.dir.len() && self.dir[i].first_time_ms <= t1 {
            let records = self.read_block(i)?;
            outcome.blocks_read += 1;
            outcome.records.extend(
                records
                    .into_iter()
                    .filter(|r| r.time_ms >= t0 && r.time_ms <= t1),
            );
            i += 1;
        }
        Ok(outcome)
    }

    /// Every committed record, in log order.
    pub fn scan_all(&self) -> Result<ScanOutcome> {
        let mut outcome = ScanOutcome::default();
        for i in 0..self.dir.len() {
            outcome.records.extend(self.read_block(i)?);
            outcome.blocks_read += 1;
        }
        Ok(outcome)
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("path", &self.path)
            .field("blocks", &self.dir.len())
            .field("records", &self.record_count)
            .field("recovery", &self.recovery)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::NodeId;

    fn record(t: u64, v: i32) -> DurableRecord {
        DurableRecord {
            time_ms: t,
            node: NodeId((v & 0x7FFF) as u16),
            attribute: 0,
            value: v,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scoop-store-segtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_seal_reopen_query() {
        let path = tmp("seal.scoop");
        let block_size = 8 + 16 * 4;
        let mut w = SegmentWriter::create(&path, block_size).unwrap();
        for t in 0..103u64 {
            w.append(record(t * 2, t as i32)).unwrap();
        }
        let seg = w.seal().unwrap();
        assert_eq!(seg.recovery(), RecoveryOutcome::Sealed);
        assert_eq!(seg.record_count(), 103);
        drop(seg);

        let seg = Segment::open(&path).unwrap().unwrap();
        assert_eq!(seg.recovery(), RecoveryOutcome::Sealed);
        let hit = seg.query_point(100).unwrap();
        assert_eq!(hit.records.len(), 1);
        assert_eq!(hit.records[0].value, 50);
        assert_eq!(hit.blocks_read, 1, "unique-timestamp point reads one block");
        let miss = seg.query_point(101).unwrap();
        assert!(miss.records.is_empty());
        let range = seg.query_range(10, 30).unwrap();
        assert_eq!(range.records.len(), 11);
        let all = seg.scan_all().unwrap();
        assert_eq!(all.records.len(), 103);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let path = tmp("order.scoop");
        let mut w = SegmentWriter::create(&path, MIN_BLOCK_SIZE).unwrap();
        w.append(record(10, 1)).unwrap();
        assert!(matches!(
            w.append(record(9, 2)),
            Err(StoreError::OutOfOrder { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unsealed_file_recovers_flushed_prefix() {
        let path = tmp("torn.scoop");
        let block_size = 8 + 16 * 2;
        let mut w = SegmentWriter::create(&path, block_size).unwrap();
        for t in 0..7u64 {
            w.append(record(t, t as i32)).unwrap();
        }
        w.sync().unwrap(); // 4 blocks: 2+2+2+1 records
        drop(w); // crash before seal

        let seg = Segment::open(&path).unwrap().unwrap();
        assert_eq!(
            seg.recovery(),
            RecoveryOutcome::Resealed { dropped_bytes: 0 }
        );
        assert_eq!(seg.record_count(), 7);
        // Recovery sealed it; a second open is clean.
        drop(seg);
        let seg = Segment::open(&path).unwrap().unwrap();
        assert_eq!(seg.recovery(), RecoveryOutcome::Sealed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_not_deleted() {
        let path = tmp("foreign.scoop");
        std::fs::write(&path, b"hi").unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(path.exists(), "foreign bytes must survive");
        std::fs::remove_file(&path).unwrap();
    }
}
