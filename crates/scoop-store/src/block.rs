//! Fixed-size, self-validating data blocks.
//!
//! A segment's data region is a sequence of blocks of exactly
//! `block_size` bytes. Each block carries its own 8-byte header —
//! `record_count u16 | reserved u16 (0) | payload_crc u32` — followed by the
//! payload: `record_count` encoded [`DurableRecord`]s and zero padding to
//! the block boundary. The CRC covers the *entire* payload region including
//! the padding, so a bit flip anywhere in the block (even in "unused" bytes)
//! is detected. Blocks are the unit of durability (a block is written in one
//! `write_all`) and the unit of read I/O (queries fetch whole blocks).

use crate::crc::crc32;
use crate::error::{corrupt, Result, StoreError};
use scoop_types::{DurableRecord, DURABLE_RECORD_LEN};
use std::path::Path;

/// Bytes of the per-block header.
pub const BLOCK_HEADER_LEN: usize = 8;

/// Smallest usable block: header plus one record.
pub const MIN_BLOCK_SIZE: usize = BLOCK_HEADER_LEN + DURABLE_RECORD_LEN;

/// How many records fit in one block of `block_size` bytes.
pub fn records_per_block(block_size: usize) -> usize {
    (block_size - BLOCK_HEADER_LEN) / DURABLE_RECORD_LEN
}

/// The in-memory summary of one block: its time fences and record count.
/// The sparse block directory is a `Vec<BlockMeta>`; at 4 KiB blocks that is
/// 20 bytes of directory per 255 records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Timestamp of the block's first record (ms).
    pub first_time_ms: u64,
    /// Timestamp of the block's last record (ms).
    pub last_time_ms: u64,
    /// Records stored in the block.
    pub count: u32,
}

/// Encodes `records` (all of them; the caller slices) into one block of
/// `block_size` bytes. Records must fit.
pub fn encode_block(records: &[DurableRecord], block_size: usize) -> Vec<u8> {
    assert!(records.len() <= records_per_block(block_size));
    assert!(!records.is_empty(), "blocks are never written empty");
    let mut block = vec![0u8; block_size];
    let mut offset = BLOCK_HEADER_LEN;
    for record in records {
        let mut buf = [0u8; DURABLE_RECORD_LEN];
        record.encode_into(&mut buf);
        block[offset..offset + DURABLE_RECORD_LEN].copy_from_slice(&buf);
        offset += DURABLE_RECORD_LEN;
    }
    let crc = crc32(&block[BLOCK_HEADER_LEN..]);
    block[0..2].copy_from_slice(&(records.len() as u16).to_le_bytes());
    block[2..4].copy_from_slice(&0u16.to_le_bytes());
    block[4..8].copy_from_slice(&crc.to_le_bytes());
    block
}

/// Decodes and validates one block. `path` is only used for error context.
/// Returns the records in stored order.
pub fn decode_block(
    bytes: &[u8],
    block_size: usize,
    path: &Path,
    block_index: usize,
) -> Result<Vec<DurableRecord>> {
    if bytes.len() != block_size {
        return Err(corrupt(
            path,
            format!(
                "block {block_index}: {} bytes on disk, block size is {block_size}",
                bytes.len()
            ),
        ));
    }
    let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let reserved = u16::from_le_bytes([bytes[2], bytes[3]]);
    let stored_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if reserved != 0 {
        return Err(corrupt(
            path,
            format!("block {block_index}: reserved field is {reserved:#06x}"),
        ));
    }
    if count == 0 || count > records_per_block(block_size) {
        return Err(corrupt(
            path,
            format!("block {block_index}: impossible record count {count}"),
        ));
    }
    let actual_crc = crc32(&bytes[BLOCK_HEADER_LEN..]);
    if actual_crc != stored_crc {
        return Err(corrupt(
            path,
            format!(
                "block {block_index}: payload checksum mismatch \
                 (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            ),
        ));
    }
    let mut records = Vec::with_capacity(count);
    let mut offset = BLOCK_HEADER_LEN;
    for _ in 0..count {
        let raw: [u8; DURABLE_RECORD_LEN] = bytes[offset..offset + DURABLE_RECORD_LEN]
            .try_into()
            .expect("sliced to record length");
        let record = DurableRecord::decode(&raw).map_err(|e| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("block {block_index}: {e}"),
        })?;
        records.push(record);
        offset += DURABLE_RECORD_LEN;
    }
    Ok(records)
}

/// Summarizes a decoded block (records are stored time-ordered).
pub fn meta_of(records: &[DurableRecord]) -> BlockMeta {
    BlockMeta {
        first_time_ms: records.first().map(|r| r.time_ms).unwrap_or(0),
        last_time_ms: records.last().map(|r| r.time_ms).unwrap_or(0),
        count: records.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::NodeId;

    fn record(t: u64, v: i32) -> DurableRecord {
        DurableRecord {
            time_ms: t,
            node: NodeId(1),
            attribute: 2,
            value: v,
        }
    }

    #[test]
    fn round_trip_partial_and_full_blocks() {
        let block_size = 8 + 16 * 4;
        assert_eq!(records_per_block(block_size), 4);
        for n in 1..=4 {
            let records: Vec<DurableRecord> = (0..n).map(|i| record(i as u64, i)).collect();
            let bytes = encode_block(&records, block_size);
            assert_eq!(bytes.len(), block_size);
            let back = decode_block(&bytes, block_size, Path::new("t"), 0).unwrap();
            assert_eq!(back, records);
            assert_eq!(meta_of(&back).count, n as u32);
        }
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let block_size = 8 + 16 * 2;
        let bytes = encode_block(&[record(5, 50)], block_size);
        // Flip every byte position in turn — header, payload, and the
        // padding after the last record must all be covered.
        for pos in 0..block_size {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode_block(&bad, block_size, Path::new("t"), 7).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn impossible_counts_are_rejected() {
        let block_size = 8 + 16 * 2;
        let bytes = encode_block(&[record(1, 1)], block_size);
        let mut bad = bytes.clone();
        bad[0] = 0; // count 0
        assert!(decode_block(&bad, block_size, Path::new("t"), 0).is_err());
        let mut bad = bytes;
        bad[0] = 200; // count beyond capacity
        assert!(decode_block(&bad, block_size, Path::new("t"), 0).is_err());
    }
}
