//! Typed errors of the durable store.
//!
//! Corruption is a *value*, never a panic: a torn tail, a flipped bit, or a
//! foreign file must surface as [`StoreError::Corrupt`] so callers can decide
//! whether to recover, refuse, or report. Every variant converts into
//! [`ScoopError::Store`] for callers living at the workspace error level.

use scoop_types::ScoopError;
use std::fmt;
use std::path::PathBuf;

/// Errors surfaced by the `scoop-store` crate.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, fsync, rename).
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// On-disk bytes failed validation: bad magic, checksum mismatch,
    /// impossible counts, or an inconsistent footer.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// What exactly failed to validate.
        detail: String,
    },
    /// The file claims a schema version this build does not understand.
    SchemaVersion {
        /// The offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// A record was appended out of time order within one segment (the
    /// segment log is time-ordered; that is what the learned index relies
    /// on). Sort the batch before appending.
    OutOfOrder {
        /// The last timestamp already in the segment (ms).
        last_time_ms: u64,
        /// The offending earlier timestamp (ms).
        got_time_ms: u64,
    },
    /// Store options are unusable (e.g. a block too small for one record).
    InvalidOptions(String),
    /// The requested operation conflicts with one already in flight
    /// (e.g. starting a second background compaction).
    Busy(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "{}: corrupt: {detail}", path.display())
            }
            StoreError::SchemaVersion {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: schema version {found} (this build reads {expected})",
                path.display()
            ),
            StoreError::OutOfOrder {
                last_time_ms,
                got_time_ms,
            } => write!(
                f,
                "record at {got_time_ms} ms appended after {last_time_ms} ms; \
                 segments are time-ordered — sort the batch"
            ),
            StoreError::InvalidOptions(msg) => write!(f, "invalid store options: {msg}"),
            StoreError::Busy(msg) => write!(f, "store busy: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for ScoopError {
    fn from(e: StoreError) -> Self {
        ScoopError::Store(e.to_string())
    }
}

/// Shorthand used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Wraps an `io::Error` with the path it happened on.
pub fn io_err(path: &std::path::Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Builds a [`StoreError::Corrupt`] for `path`.
pub fn corrupt(path: &std::path::Path, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn display_and_conversion() {
        let e = corrupt(Path::new("seg-1.scoop"), "block 3 checksum mismatch");
        assert!(e.to_string().contains("block 3"));
        let scoop: ScoopError = e.into();
        assert!(matches!(scoop, ScoopError::Store(_)));
        assert!(scoop.to_string().starts_with("store error:"));

        let o = StoreError::OutOfOrder {
            last_time_ms: 10,
            got_time_ms: 5,
        };
        assert!(o.to_string().contains("sort the batch"));
    }
}
