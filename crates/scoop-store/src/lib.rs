//! Persistent, crash-safe basestation store for Scoop readings.
//!
//! The simulator keeps everything in memory; this crate is where readings
//! go to *survive*: an append-only, block-structured segment log with
//! per-block CRCs and an fsync'd committing footer, a two-level time index
//! (sparse block directory + piecewise-linear learned index with a hard
//! error bound), and size-tiered compaction of the immutable sealed
//! segments. `query-at-rest` — point and range lookups over the time column
//! after the producing process is long gone — reads at most one data block
//! per point lookup per segment.
//!
//! Module map:
//!
//! * [`crc`] — CRC-32 (IEEE) used by every on-disk structure
//! * [`block`] — fixed-size self-validating data blocks
//! * [`index`] — learned index + B-tree reference behind [`TimeIndex`]
//! * [`segment`] — one segment file: writer, reader, torn-tail recovery
//! * [`store`] — the multi-segment store with query-at-rest and stats
//! * [`compact`] — size-tiered background compaction
//! * [`backend`] — [`DiskBackend`], the `scoop-storage` persistence seam
//! * [`error`] — typed [`StoreError`]
//!
//! The byte-level format is specified in `docs/STORE_FORMAT.md`.

#![warn(missing_docs)]

pub mod backend;
pub mod block;
pub mod compact;
pub mod crc;
pub mod error;
pub mod index;
pub mod segment;
pub mod store;

pub use backend::DiskBackend;
pub use block::{records_per_block, BlockMeta};
pub use compact::{CompactionJob, CompactionResult};
pub use error::{Result, StoreError};
pub use index::{BTreeRefIndex, LearnedTimeIndex, TimeIndex, DEFAULT_MAX_ERROR};
pub use segment::{
    RecoveryOutcome, ScanOutcome, Segment, SegmentWriter, DEFAULT_BLOCK_SIZE, FOOTER_LEN,
    HEADER_LEN, SCHEMA_VERSION,
};
pub use store::{IngestReport, Store, StoreOptions, StoreStats};
