//! CRC-32 (IEEE 802.3 polynomial, the `zlib`/`gzip` checksum).
//!
//! The container is offline, so the usual `crc32fast` crate is not
//! available; this is the standard byte-at-a-time table implementation. The
//! table is built at compile time.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"scoop-store");
        let mut flipped = b"scoop-store".to_vec();
        flipped[4] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}
