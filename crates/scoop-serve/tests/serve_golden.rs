//! The hermetic serve smoke against its committed golden report.
//!
//! `run_smoke` is a pure function of its options — fixed seed, fixed query
//! mix, in-memory transport — so the whole report (digest included) is
//! committed at `golden/serve_smoke.json` and compared verbatim. An
//! intentional behavior change re-blesses with:
//!
//! ```text
//! SCOOP_SERVE_BLESS_GOLDEN=1 cargo test -p scoop-serve --test serve_golden
//! ```

use scoop_serve::smoke::{run_smoke, SmokeOptions, SmokeReport};
use std::path::Path;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/serve_smoke.json");

#[test]
fn smoke_matches_committed_golden() {
    let report = run_smoke(&SmokeOptions::default()).expect("smoke runs");

    if std::env::var("SCOOP_SERVE_BLESS_GOLDEN").is_ok() {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::create_dir_all(Path::new(GOLDEN_PATH).parent().expect("has parent"))
            .expect("golden dir");
        std::fs::write(GOLDEN_PATH, json + "\n").expect("golden written");
        eprintln!("blessed {GOLDEN_PATH}");
        return;
    }

    let committed = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "no committed golden at {GOLDEN_PATH} ({e}); \
             run once with SCOOP_SERVE_BLESS_GOLDEN=1 to create it"
        )
    });
    let golden: SmokeReport = serde_json::from_str(&committed).expect("golden parses");
    assert_eq!(
        report, golden,
        "serve smoke diverged from the committed golden; if the change is \
         intentional, re-bless with SCOOP_SERVE_BLESS_GOLDEN=1"
    );
}
