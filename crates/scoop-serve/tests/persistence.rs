//! The persistence seam, end to end: a serving process journals drained
//! readings through the flash-accounted backend into a scoop-store segment
//! log, and a *new* process over the same directory answers queries about
//! data it never simulated — serving across restarts.

use scoop_serve::server::{ServeOptions, ServeServer};
use scoop_types::{ScenarioSpec, ServeRequest, SimDuration, SimTime, ValueRange};
use std::path::{Path, PathBuf};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scoop-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(dir: &Path) -> ServeOptions {
    let mut options = ServeOptions::new(ScenarioSpec::small_test());
    options.tick = SimDuration::from_secs(30);
    options.persist_dir = Some(dir.to_path_buf());
    options
}

#[test]
fn a_restarted_server_answers_from_the_durable_store() {
    let dir = scratch_dir("restart");

    // First life: run past warmup so real readings flow, then sync and stop.
    let mut first = ServeServer::new(options(&dir)).expect("first server");
    let mut frames = Vec::new();
    for _ in 0..10 {
        first.tick(&mut frames).expect("tick");
    }
    first.sync().expect("sync");
    let drained = first.stats().readings_drained;
    let persisted = first.stats().records_persisted;
    assert!(drained > 0, "300 simulated s crosses the 2-minute warmup");
    assert_eq!(persisted, drained, "every drained reading reached the seam");
    let ledger = first.flash_ledger().expect("persistence is on");
    assert_eq!(ledger.total_writes(), drained, "flash charged per reading");
    assert!(ledger.total_write_energy_joules() > 0.0);
    drop(first);

    // Second life: same directory, fresh simulation. The index starts
    // preloaded and a query over the first life's time span returns rows
    // before the new network has produced anything past its warmup.
    let mut second = ServeServer::new(options(&dir)).expect("second server");
    assert_eq!(
        second.stats().readings_preloaded,
        drained,
        "everything synced in the first life is served in the second"
    );
    second
        .submit(
            1,
            ServeRequest {
                id: 7,
                values: ValueRange::new(-1_000, 1_000),
                time_lo: SimTime::ZERO,
                time_hi: SimTime::from_mins(10),
            },
        )
        .expect("queue is empty");
    frames.clear();
    second.tick(&mut frames).expect("tick");
    assert_eq!(frames.len(), 1);
    let response = scoop_types::ServeResponse::decode(&frames[0].1).expect("frame decodes");
    match response {
        scoop_types::ServeResponse::Rows(rows) => {
            assert_eq!(rows.id, 7);
            assert_eq!(
                rows.rows.len() as u64,
                drained,
                "the whole first life is visible through the restart"
            );
            assert!(
                rows.rows.windows(2).all(|w| w[0] <= w[1]),
                "canonical time-major order survives the round trip"
            );
        }
        other => panic!("expected rows, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn without_persistence_nothing_survives_and_nothing_is_charged() {
    let mut options = ServeOptions::new(ScenarioSpec::small_test());
    options.tick = SimDuration::from_secs(30);
    let mut server = ServeServer::new(options).expect("server");
    let mut frames = Vec::new();
    for _ in 0..10 {
        server.tick(&mut frames).expect("tick");
    }
    assert!(server.stats().readings_drained > 0);
    assert_eq!(server.stats().records_persisted, 0);
    assert!(server.flash_ledger().is_none());
    server.sync().expect("sync is a no-op without a backend");
}
