//! The persistence seam, end to end: a serving process journals drained
//! readings through the flash-accounted backend into a scoop-store segment
//! log, and a *new* process over the same directory answers queries about
//! data it never simulated — serving across restarts. The failpoint half
//! proves the degrade path: a dying backend becomes a typed error and the
//! server keeps answering from memory.

use scoop_serve::server::{ServeOptions, ServeServer};
use scoop_storage::{FailpointBackend, InMemoryBackend};
use scoop_types::{ScenarioSpec, ScoopError, ServeRequest, SimDuration, SimTime, ValueRange};
use std::path::{Path, PathBuf};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scoop-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(dir: &Path) -> ServeOptions {
    let mut options = ServeOptions::new(ScenarioSpec::small_test());
    options.tick = SimDuration::from_secs(30);
    options.persist_dir = Some(dir.to_path_buf());
    options
}

#[test]
fn a_restarted_server_answers_from_the_durable_store() {
    let dir = scratch_dir("restart");

    // First life: run past warmup so real readings flow, then sync and stop.
    let mut first = ServeServer::new(options(&dir)).expect("first server");
    let mut frames = Vec::new();
    for _ in 0..10 {
        first.tick(&mut frames).expect("tick");
    }
    first.sync().expect("sync");
    let drained = first.stats().readings_drained;
    let persisted = first.stats().records_persisted;
    assert!(drained > 0, "300 simulated s crosses the 2-minute warmup");
    assert_eq!(persisted, drained, "every drained reading reached the seam");
    let ledger = first.flash_ledger().expect("persistence is on");
    assert_eq!(ledger.total_writes(), drained, "flash charged per reading");
    assert!(ledger.total_write_energy_joules() > 0.0);
    drop(first);

    // Second life: same directory, fresh simulation. The index starts
    // preloaded and a query over the first life's time span returns rows
    // before the new network has produced anything past its warmup.
    let mut second = ServeServer::new(options(&dir)).expect("second server");
    assert_eq!(
        second.stats().readings_preloaded,
        drained,
        "everything synced in the first life is served in the second"
    );
    second
        .submit(
            1,
            ServeRequest {
                id: 7,
                values: ValueRange::new(-1_000, 1_000),
                time_lo: SimTime::ZERO,
                time_hi: SimTime::from_mins(10),
            },
        )
        .expect("queue is empty");
    frames.clear();
    second.tick(&mut frames).expect("tick");
    assert_eq!(frames.len(), 1);
    let response = scoop_types::ServeResponse::decode(&frames[0].1).expect("frame decodes");
    match response {
        scoop_types::ServeResponse::Rows(rows) => {
            assert_eq!(rows.id, 7);
            assert_eq!(
                rows.rows.len() as u64,
                drained,
                "the whole first life is visible through the restart"
            );
            assert!(
                rows.rows.windows(2).all(|w| w[0] <= w[1]),
                "canonical time-major order survives the round trip"
            );
        }
        other => panic!("expected rows, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dying_backend_degrades_to_a_typed_error_and_serving_continues() {
    let spec = ScenarioSpec::small_test();
    // One append call per node per tick: fail early in tick 8 (0-based),
    // well after readings started flowing, tearing the batch at 1 record.
    let nodes = spec.num_nodes as u64 + 1;
    let backend = FailpointBackend::new(InMemoryBackend::new())
        .fail_append_at(8 * nodes + 2)
        .torn_write_keep(1);
    let mut options = ServeOptions::new(spec);
    options.tick = SimDuration::from_secs(30);
    let mut server = ServeServer::with_backend(options, backend).expect("server");

    let mut frames = Vec::new();
    for _ in 0..8 {
        server.tick(&mut frames).expect("healthy ticks");
    }
    assert!(server.persistence_active());
    assert!(server.persistence_error().is_none());
    let persisted_before_failure = server.stats().records_persisted;
    assert!(
        persisted_before_failure > 0,
        "readings flowed before the fault"
    );

    // The failing tick must not error, drop queries, or panic — it degrades.
    server
        .submit(
            1,
            ServeRequest {
                id: 42,
                values: ValueRange::new(-1_000, 1_000),
                time_lo: SimTime::ZERO,
                time_hi: SimTime::from_mins(10),
            },
        )
        .expect("queue is empty");
    frames.clear();
    for _ in 0..4 {
        server
            .tick(&mut frames)
            .expect("the fault is absorbed, not returned");
    }

    let err = server.persistence_error().expect("the failpoint fired");
    assert!(
        matches!(err, ScoopError::Store(_)),
        "typed Store error: {err}"
    );
    assert!(err.to_string().contains("failpoint"), "{err}");
    assert!(!server.persistence_active(), "the seam is detached");
    assert!(server.flash_ledger().is_none(), "accounting went with it");
    server.sync().expect("sync after degrade is a clean no-op");

    // Serving carried on from memory: the query in the failing tick was
    // answered, and post-degrade readings keep getting drained and served
    // even though nothing persists them anymore.
    assert_eq!(frames.len(), 1);
    let response = scoop_types::ServeResponse::decode(&frames[0].1).expect("frame decodes");
    match response {
        scoop_types::ServeResponse::Rows(rows) => {
            assert_eq!(rows.id, 42);
            assert!(!rows.rows.is_empty(), "answered from memory");
        }
        other => panic!("expected rows, got {other:?}"),
    }
    assert!(
        server.stats().readings_drained > server.stats().records_persisted,
        "post-degrade drains are served from memory, not persisted"
    );
    assert!(
        server.stats().records_persisted > persisted_before_failure,
        "the torn write's prefix is counted as durable"
    );
}

#[test]
fn a_failing_commit_point_degrades_instead_of_killing_the_serve_loop() {
    let backend = FailpointBackend::new(InMemoryBackend::new()).fail_sync_at(0);
    let mut options = ServeOptions::new(ScenarioSpec::small_test());
    options.tick = SimDuration::from_secs(30);
    let mut server = ServeServer::with_backend(options, backend).expect("server");

    let mut frames = Vec::new();
    for _ in 0..6 {
        server.tick(&mut frames).expect("tick");
    }
    server
        .sync()
        .expect("the scripted sync failure is absorbed");
    let err = server
        .persistence_error()
        .expect("degraded at the commit point");
    assert!(matches!(err, ScoopError::Store(_)));
    assert!(!server.persistence_active());

    // The loop keeps going: further ticks and syncs stay clean.
    server.tick(&mut frames).expect("tick after degrade");
    server.sync().expect("sync after degrade");
}

#[test]
fn without_persistence_nothing_survives_and_nothing_is_charged() {
    let mut options = ServeOptions::new(ScenarioSpec::small_test());
    options.tick = SimDuration::from_secs(30);
    let mut server = ServeServer::new(options).expect("server");
    let mut frames = Vec::new();
    for _ in 0..10 {
        server.tick(&mut frames).expect("tick");
    }
    assert!(server.stats().readings_drained > 0);
    assert_eq!(server.stats().records_persisted, 0);
    assert!(server.flash_ledger().is_none());
    server.sync().expect("sync is a no-op without a backend");
}
