//! The answer cache's correctness contract, property-tested: for *arbitrary*
//! interleavings of ingest batches and point/range queries, the cached and
//! uncached cores return byte-identical payloads — including repeated queries
//! (hot hits), queries straddling invalidations, empty ranges, and predicates
//! reaching outside the value domain. A second test proves the same equality
//! one level up, through the full server + in-memory transport path.

use proptest::prelude::*;
use scoop_serve::core::AnswerCore;
use scoop_serve::server::{pump_once, ServeOptions, ServeServer};
use scoop_serve::transport::InMemoryHub;
use scoop_types::{
    DurableRecord, NodeId, QueryPredicate, ScenarioSpec, ServeRequest, SimDuration, SimTime,
    ValueRange,
};

/// One step of an interleaved workload, decoded from plain tuples (the
/// proptest shim has no enum strategies).
#[derive(Clone, Debug)]
enum Op {
    /// Ingest a small batch of records derived from the payload.
    Ingest {
        base_value: i32,
        time_ms: u64,
        count: u8,
    },
    /// Ask both cores (twice, so the second ask can be a cache hit).
    Query {
        value_a: i32,
        value_b: i32,
        time_ms: u64,
        width_ms: u64,
    },
}

fn decode_op(raw: (u8, i32, i32, u64, u64)) -> Op {
    let (kind, a, b, t, w) = raw;
    if kind == 0 {
        Op::Ingest {
            base_value: a,
            time_ms: t,
            count: (b.rem_euclid(4) + 1) as u8,
        }
    } else {
        Op::Query {
            value_a: a,
            value_b: b,
            time_ms: t,
            width_ms: w,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary ingest/query interleavings: cached payload bytes equal
    /// uncached payload bytes at every step.
    #[test]
    fn any_interleaving_is_byte_identical_cache_on_or_off(
        raw_ops in proptest::collection::vec(
            (0u8..2, -20i32..40, -20i32..40, 0u64..2_000, 0u64..600),
            1..80,
        ),
        cache_capacity in 1usize..24,
    ) {
        // A small domain and tight value/time ranges force collisions:
        // invalidations, overlapping predicates, and out-of-domain records
        // all actually happen within 80 ops.
        let domain = ValueRange::new(0, 19);
        let mut cached = AnswerCore::new(domain, cache_capacity);
        let mut uncached = AnswerCore::new(domain, 0);

        for raw in raw_ops {
            match decode_op(raw) {
                Op::Ingest { base_value, time_ms, count } => {
                    let batch: Vec<DurableRecord> = (0..count)
                        .map(|i| DurableRecord {
                            time_ms: time_ms + i as u64,
                            node: NodeId(1 + i as u16),
                            attribute: 0,
                            value: base_value + i as i32,
                        })
                        .collect();
                    cached.ingest(&batch);
                    uncached.ingest(&batch);
                }
                Op::Query { value_a, value_b, time_ms, width_ms } => {
                    let pred = QueryPredicate {
                        value_lo: value_a.min(value_b),
                        value_hi: value_a.max(value_b),
                        time_lo_ms: time_ms,
                        time_hi_ms: time_ms + width_ms,
                    };
                    // Ask twice: the second answer exercises the hot-hit
                    // splice path in the cached core.
                    prop_assert_eq!(cached.answer_payload(&pred), uncached.answer_payload(&pred));
                    prop_assert_eq!(cached.answer_payload(&pred), uncached.answer_payload(&pred));
                }
            }
        }
        prop_assert_eq!(cached.stats().rows_returned, uncached.stats().rows_returned);
    }
}

/// Runs a fixed query schedule through a full server over the in-memory
/// transport and returns every client's frames in a deterministic order.
fn serve_frames(cache_capacity: usize) -> (Vec<Vec<u8>>, u64) {
    let mut options = ServeOptions::new(ScenarioSpec::small_test());
    options.tick = SimDuration::from_secs(30);
    options.queue_capacity = 32;
    options.cache_capacity = cache_capacity;
    let mut server = ServeServer::new(options).expect("server builds");

    let hub = InMemoryHub::new();
    let clients = [hub.client(), hub.client()];
    let mut transport = hub.transport();
    let mut reqs = Vec::new();
    let mut out = Vec::new();
    let mut frames = Vec::new();
    let mut id = 0u64;

    for tick in 0..12u64 {
        for k in 0..8u64 {
            // A deterministic, repetitive mix: point and range predicates
            // whose windows repeat across ticks so the cache engages.
            let lo = ((tick + k) % 10) as i32 * 3;
            let width = (k % 3) as i32 * 4;
            let t0 = (tick / 4) * 120_000;
            clients[(k % 2) as usize].submit(ServeRequest {
                id,
                values: ValueRange::new(lo, lo + width),
                time_lo: SimTime::from_millis(t0),
                time_hi: SimTime::from_millis(t0 + 240_000),
            });
            id += 1;
        }
        pump_once(&mut server, &mut transport, &mut reqs, &mut frames).expect("pump");
        for client in &clients {
            out.extend(client.drain_frames());
        }
    }
    (out, server.core_stats().cache_hits)
}

#[test]
fn full_server_path_is_byte_identical_cache_on_or_off() {
    let (with_cache, hits) = serve_frames(64);
    let (without_cache, no_hits) = serve_frames(0);
    assert_eq!(with_cache, without_cache, "every frame, byte for byte");
    assert!(hits > 0, "the cached run must actually serve from cache");
    assert_eq!(no_hits, 0);
}
