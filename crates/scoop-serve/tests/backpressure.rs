//! The backpressure contract, end to end: over-budget bursts yield typed
//! `Overloaded` responses — never a panic, never a silent drop — every
//! request gets exactly one response, and the server recovers fully on the
//! next tick.

use scoop_serve::server::{pump_once, ServeOptions, ServeServer};
use scoop_serve::tcp::{QueryError, RetryPolicy, TcpClient, TcpServerTransport};
use scoop_serve::transport::InMemoryHub;
use scoop_types::{ScenarioSpec, ServeRequest, ServeResponse, SimDuration, SimTime, ValueRange};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn small_server(queue_capacity: usize) -> ServeServer {
    let mut options = ServeOptions::new(ScenarioSpec::small_test());
    options.tick = SimDuration::from_secs(30);
    options.queue_capacity = queue_capacity;
    options.cache_capacity = 16;
    ServeServer::new(options).expect("server builds")
}

fn request(id: u64) -> ServeRequest {
    ServeRequest {
        id,
        values: ValueRange::new(0, 149),
        time_lo: SimTime::ZERO,
        time_hi: SimTime::from_mins(10),
    }
}

#[test]
fn burst_over_budget_yields_typed_overloaded_for_every_excess_request() {
    let mut server = small_server(16);
    let hub = InMemoryHub::new();
    let client = hub.client();
    let mut transport = hub.transport();

    // A burst of 50 against a queue of 16: 16 admitted, 34 rejected.
    for id in 0..50 {
        client.submit(request(id));
    }
    let (mut reqs, mut frames) = (Vec::new(), Vec::new());
    pump_once(&mut server, &mut transport, &mut reqs, &mut frames).expect("pump never panics");

    let responses = client.drain_responses().expect("all frames decode");
    assert_eq!(responses.len(), 50, "exactly one response per request");

    let mut rows = 0;
    let mut overloaded = Vec::new();
    for response in &responses {
        match response {
            ServeResponse::Rows(_) => rows += 1,
            ServeResponse::Overloaded(o) => {
                assert_eq!(o.capacity, 16);
                assert_eq!(o.queued, 16, "rejected exactly at the full mark");
                overloaded.push(o.id);
            }
        }
    }
    assert_eq!(rows, 16);
    assert_eq!(overloaded.len(), 34);
    // Admission is in arrival order, so the rejected ids are the tail.
    assert_eq!(overloaded, (16..50).collect::<Vec<u64>>());
    assert_eq!(server.stats().overloaded, 34);
    assert_eq!(server.stats().answered, 16);

    // The next tick starts with a drained queue: capacity is fully back.
    for id in 100..116 {
        client.submit(request(id));
    }
    pump_once(&mut server, &mut transport, &mut reqs, &mut frames).expect("pump");
    let responses = client.drain_responses().expect("frames decode");
    assert_eq!(responses.len(), 16);
    assert!(
        responses
            .iter()
            .all(|r| matches!(r, ServeResponse::Rows(_))),
        "no lingering backpressure after the burst drained"
    );
}

#[test]
fn direct_submission_reports_queue_depth_at_rejection_time() {
    let mut server = small_server(4);
    for id in 0..4 {
        assert!(server.submit(0, request(id)).is_ok());
    }
    let err = server.submit(0, request(99)).expect_err("queue is full");
    assert_eq!(err.id, 99);
    assert_eq!(err.queued, 4);
    assert_eq!(err.capacity, 4);
    let shown = err.to_string();
    assert!(shown.contains("admission queue full (4/4)"), "{shown}");

    // Draining via a tick restores the whole budget.
    let mut frames = Vec::new();
    server.tick(&mut frames).expect("tick");
    assert_eq!(frames.len(), 4);
    assert!(server.submit(0, request(100)).is_ok());
}

/// The retry half of the contract, over a real socket: more concurrent
/// clients than the admission queue holds drive it full, rejected requests
/// come back as typed `Overloaded` frames, and bounded seeded retry rides
/// the pressure out — every query either answers with rows or returns the
/// typed give-up error. Nothing is ever dropped silently.
#[test]
fn retrying_clients_drain_a_saturated_queue_or_fail_typed() {
    let mut server = small_server(2);
    let mut transport = TcpServerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.local_addr().expect("addr");

    // Serve on a background thread until every client is done.
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let server_thread = std::thread::spawn(move || {
        let (mut reqs, mut frames) = (Vec::new(), Vec::new());
        while !flag.load(Ordering::Relaxed) {
            pump_once(&mut server, &mut transport, &mut reqs, &mut frames)
                .expect("the server must survive saturation");
            std::thread::sleep(Duration::from_micros(500));
        }
        *server.stats()
    });

    // 8 clients against a queue of 2, each issuing 4 queries with a
    // generous retry budget seeded per client.
    const CLIENTS: u64 = 8;
    const QUERIES_PER_CLIENT: u64 = 4;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                let policy = RetryPolicy {
                    max_retries: 200,
                    base: Duration::from_micros(200),
                    cap: Duration::from_millis(4),
                    seed: c,
                };
                let mut attempts_total = 0u32;
                let mut answered = 0u64;
                for q in 0..QUERIES_PER_CLIENT {
                    match client.query_with_retry(&request(c * 100 + q), &policy) {
                        Ok((rows, attempts)) => {
                            assert_eq!(rows.id, c * 100 + q);
                            attempts_total += attempts;
                            answered += 1;
                        }
                        // The typed give-up error is an acceptable outcome;
                        // a transport error or a missing response is not.
                        Err(QueryError::RetriesExhausted(gave_up)) => {
                            assert_eq!(gave_up.id, c * 100 + q);
                            attempts_total += gave_up.attempts;
                        }
                        Err(QueryError::Transport(e)) => panic!("transport failed: {e}"),
                    }
                }
                (answered, attempts_total)
            })
        })
        .collect();

    let mut answered = 0;
    let mut attempts = 0;
    for handle in clients {
        let (a, t) = handle.join().expect("client thread");
        answered += a;
        attempts += u64::from(t);
    }
    stop.store(true, Ordering::Relaxed);
    let stats = server_thread.join().expect("server thread");

    let total = CLIENTS * QUERIES_PER_CLIENT;
    assert_eq!(
        answered, total,
        "with a 200-retry budget every query must eventually answer"
    );
    assert!(
        attempts > total,
        "8 clients vs a queue of 2 must trigger at least one retry"
    );
    assert!(
        stats.overloaded > 0,
        "the queue never filled; the test exercised nothing"
    );
    // Exactly one response per attempt: rows for every admission, a typed
    // rejection for everything else — no silent drops anywhere.
    assert_eq!(stats.answered, answered);
    assert_eq!(stats.answered + stats.overloaded, attempts);
}
