//! Range-workload serving, end to end: a server whose simulated network runs
//! the `Range` workload kind answers a hermetic range-query schedule over the
//! in-memory transport, each range asked twice, and the full frame stream is
//! digest-identical with the cache on or off. The restart half proves the
//! durable path: a second process over the same store segments answers range
//! predicates about data it never simulated, and disjoint ranges partition
//! the preloaded rows exactly.

use scoop_serve::server::{pump_once, ServeOptions, ServeServer};
use scoop_serve::transport::InMemoryHub;
use scoop_types::{
    AggregateOp, AggregateSpec, QueryPredicate, ScenarioSpec, ServeRequest, SimDuration, SimTime,
    ValueRange, WorkloadKind,
};
use std::path::{Path, PathBuf};

/// A scenario whose simulated network itself runs range queries (the new
/// workload kind), not the default point workload.
fn range_scenario() -> ScenarioSpec {
    let mut spec = ScenarioSpec::small_test();
    spec.workload.kind = WorkloadKind::range(0.2);
    spec.validate().expect("range workload spec is valid");
    spec
}

/// FNV-1a over every frame, in order — the digest the cache-equivalence
/// claim is stated over.
fn digest(frames: &[Vec<u8>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for frame in frames {
        for &b in frame {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Frame boundary, so [ab][c] != [a][bc].
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the fixed range-query schedule through a full server over the
/// in-memory transport: every range is asked twice (the second ask can be a
/// hot cache hit), windows repeat across ticks so invalidation happens.
fn serve_range_frames(cache_capacity: usize) -> (Vec<Vec<u8>>, u64) {
    let mut options = ServeOptions::new(range_scenario());
    options.tick = SimDuration::from_secs(30);
    options.queue_capacity = 64;
    options.cache_capacity = cache_capacity;
    let mut server = ServeServer::new(options).expect("server builds");

    let hub = InMemoryHub::new();
    let clients = [hub.client(), hub.client()];
    let mut transport = hub.transport();
    let mut reqs = Vec::new();
    let mut frames_scratch = Vec::new();
    let mut frames = Vec::new();
    let mut id = 0u64;

    // Ranges of varying width marching across the domain; the time window
    // changes every third tick so predicates can repeat within a window.
    let pred_at = |tick: u64, k: u64| {
        let lo = ((tick * 5 + k * 7) % 25) as i32;
        let width = 2 + (k % 4) as i32 * 6;
        let t0 = (tick / 3) * 90_000;
        (
            ValueRange::new(lo, lo + width),
            SimTime::from_millis(t0),
            SimTime::from_millis(t0 + 300_000),
        )
    };
    for tick in 0..12u64 {
        for k in 0..6u64 {
            // Each range is asked twice: once now, and again by the other
            // client on the next tick (same-tick duplicates would coalesce
            // in admission and never touch the cache).
            for (client, t) in [(0usize, tick), (1, tick.saturating_sub(1))] {
                let (values, time_lo, time_hi) = pred_at(t, k);
                clients[client].submit(ServeRequest {
                    id,
                    values,
                    time_lo,
                    time_hi,
                });
                id += 1;
            }
        }
        pump_once(&mut server, &mut transport, &mut reqs, &mut frames_scratch).expect("pump");
        for client in &clients {
            frames.extend(client.drain_frames());
        }
    }
    (frames, server.core_stats().cache_hits)
}

#[test]
fn range_schedule_digests_are_identical_cache_on_or_off() {
    let (cached, hits) = serve_range_frames(64);
    let (uncached, no_hits) = serve_range_frames(0);
    assert!(!cached.is_empty(), "the schedule produced answers");
    assert_eq!(digest(&cached), digest(&uncached), "digest equality");
    assert_eq!(cached, uncached, "and the frames themselves, byte for byte");
    assert!(hits > 0, "asking every range twice engages the cache");
    assert_eq!(no_hits, 0);
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scoop-serve-range-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persist_options(dir: &Path) -> ServeOptions {
    let mut options = ServeOptions::new(range_scenario());
    options.tick = SimDuration::from_secs(30);
    options.persist_dir = Some(dir.to_path_buf());
    options
}

#[test]
fn restarted_server_answers_range_queries_from_preloaded_segments() {
    let dir = scratch_dir("restart");

    // First life: run past warmup so readings persist, then stop.
    let mut first = ServeServer::new(persist_options(&dir)).expect("first server");
    let mut frames = Vec::new();
    for _ in 0..10 {
        first.tick(&mut frames).expect("tick");
    }
    first.sync().expect("sync");
    let drained = first.stats().readings_drained;
    assert!(drained > 0, "the first life produced data");
    drop(first);

    // Second life: the index starts preloaded from the store segments.
    let mut second = ServeServer::new(persist_options(&dir)).expect("second server");
    assert_eq!(second.stats().readings_preloaded, drained);

    // Two disjoint ranges that cover the whole domain must partition the
    // preloaded rows exactly — no double counting, nothing dropped.
    let domain = range_scenario().workload.value_domain;
    let mid = (domain.lo + domain.hi) / 2;
    let halves = [
        ValueRange::new(domain.lo, mid),
        ValueRange::new(mid + 1, domain.hi),
    ];
    let mut rows_total = 0u64;
    for (i, half) in halves.iter().enumerate() {
        second
            .submit(
                1,
                ServeRequest {
                    id: i as u64,
                    values: *half,
                    time_lo: SimTime::ZERO,
                    time_hi: SimTime::from_mins(10),
                },
            )
            .expect("queue is empty");
        frames.clear();
        second.tick(&mut frames).expect("tick");
        assert_eq!(frames.len(), 1);
        let response = scoop_types::ServeResponse::decode(&frames[0].1).expect("frame decodes");
        match response {
            scoop_types::ServeResponse::Rows(rows) => {
                assert_eq!(rows.id, i as u64);
                assert!(
                    rows.rows.iter().all(|r| half.contains(r.value)),
                    "every row honors its range predicate"
                );
                rows_total += rows.rows.len() as u64;
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }
    assert_eq!(
        rows_total, drained,
        "disjoint covering ranges partition the preloaded store"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregate_answers_agree_with_served_rows_across_a_restart() {
    let dir = scratch_dir("aggregate");

    let mut first = ServeServer::new(persist_options(&dir)).expect("first server");
    let mut frames = Vec::new();
    for _ in 0..10 {
        first.tick(&mut frames).expect("tick");
    }
    first.sync().expect("sync");
    let drained = first.stats().readings_drained;
    assert!(drained > 0);
    drop(first);

    let mut second = ServeServer::new(persist_options(&dir)).expect("second server");
    let domain = range_scenario().workload.value_domain;
    let pred = QueryPredicate {
        value_lo: domain.lo,
        value_hi: domain.hi,
        time_lo_ms: 0,
        time_hi_ms: SimTime::from_mins(10).as_millis(),
    };
    let spec = AggregateSpec {
        op: AggregateOp::Quantile(0.5),
        epsilon: 0.05,
    };
    let partial = second.aggregate_answer(&pred, &spec);
    assert_eq!(
        partial.count, drained,
        "the aggregate sees every preloaded record"
    );
    assert!(domain.contains(partial.min) && domain.contains(partial.max));
    assert!(partial.min <= partial.max);
    let median = partial
        .answer(AggregateOp::Quantile(0.5))
        .expect("non-empty");
    assert!(
        (partial.min as f64) <= median && median <= (partial.max as f64),
        "median {median} inside [{}, {}]",
        partial.min,
        partial.max
    );

    let _ = std::fs::remove_dir_all(&dir);
}
