//! The serving loop: one simulated network behind a batched query front end.
//!
//! A [`ServeServer`] owns an `Engine<SimNode>` built from a [`ScenarioSpec`]
//! and advances it in fixed admission ticks. Each tick:
//!
//! 1. an ordinary `TimerFire` with [`TICK_SERVE`] is injected into the
//!    basestation through the region-sharded event queue — the admitted
//!    batch is part of the deterministic event stream, so the engine's
//!    determinism proofs (byte-identity at any shard count) keep holding;
//! 2. the engine runs up to the tick boundary;
//! 3. every node's data buffer is drained incrementally (cursor per node, in
//!    node-id order) into the server's [`AnswerCore`] — and, when persistence
//!    is configured, through the flash-accounted [`FlashPersistence`] seam
//!    into a `scoop-store` segment log on disk;
//! 4. the bounded admission queue is drained, identical predicates are
//!    coalesced, and each unique predicate is answered once — from the cache
//!    when it can prove the bytes unchanged, by evaluation otherwise.
//!
//! Queries never ride the simulated radio: Scoop's in-network index is about
//! where *readings* live; the serving tier answers from the basestation-side
//! consolidated view, which is exactly what the paper's basestation could
//! build from the drained data it already sees.

use crate::admission::AdmissionQueue;
use crate::core::{AnswerCore, CoreStats};
use crate::transport::{ClientId, Transport};
use scoop_net::Engine;
use scoop_sim::{SimBuilder, SimNode, TICK_SERVE};
use scoop_storage::{FlashLedger, FlashModel, FlashPersistence, PersistenceBackend, StoredReading};
use scoop_store::{DiskBackend, Store, StoreOptions};
use scoop_types::append_overloaded_frame;
use scoop_types::{
    append_rows_frame, DurableRecord, NodeId, Overloaded, QueryPredicate, ScenarioSpec, ScoopError,
    ServeRequest, SimDuration, SimTime,
};
use std::collections::HashMap;
use std::path::PathBuf;

/// Configuration of one serving process.
pub struct ServeOptions {
    /// The simulated network to own.
    pub spec: ScenarioSpec,
    /// Simulated time between admission ticks.
    pub tick: SimDuration,
    /// Admission queue bound: requests beyond this are rejected `Overloaded`.
    pub queue_capacity: usize,
    /// Answer-cache entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// When set, drained readings also flow through the flash-accounted
    /// persistence seam into a `scoop-store` segment log at this directory,
    /// and any records already on disk are preloaded into the query index at
    /// startup (serving across restarts).
    pub persist_dir: Option<PathBuf>,
    /// Flash chip model used for per-node accounting at the persistence
    /// seam.
    pub flash: FlashModel,
}

impl ServeOptions {
    /// Defaults: 1-second ticks, a 1024-deep admission queue, a 4096-entry
    /// cache, no persistence.
    pub fn new(spec: ScenarioSpec) -> Self {
        ServeOptions {
            spec,
            tick: SimDuration::from_secs(1),
            queue_capacity: 1024,
            cache_capacity: 4096,
            persist_dir: None,
            flash: FlashModel::default(),
        }
    }
}

/// Counters a serving process accumulates (see [`CoreStats`] for the
/// answering-side half).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Admission ticks run.
    pub ticks: u64,
    /// Requests answered with rows.
    pub answered: u64,
    /// Requests rejected `Overloaded` at submission.
    pub overloaded: u64,
    /// Unique predicates evaluated after per-tick coalescing.
    pub coalesced_groups: u64,
    /// Readings drained out of node buffers into the index.
    pub readings_drained: u64,
    /// Readings preloaded from the durable store at startup.
    pub readings_preloaded: u64,
    /// Readings forwarded to the persistence seam.
    pub records_persisted: u64,
}

/// The flash-accounted persistence seam as the server sees it, erased over
/// the concrete backend so tests can wire in fault-injecting ones (see
/// `scoop_storage::FailpointBackend`) without changing the serving loop.
trait PersistSeam: Send {
    fn append_node_batch(
        &mut self,
        owner: NodeId,
        batch: &[StoredReading],
    ) -> Result<(), ScoopError>;
    fn sync(&mut self) -> Result<(), ScoopError>;
    fn records_persisted(&self) -> u64;
    fn ledger(&self) -> &FlashLedger;
}

impl<B: PersistenceBackend + Send> PersistSeam for FlashPersistence<B> {
    fn append_node_batch(
        &mut self,
        owner: NodeId,
        batch: &[StoredReading],
    ) -> Result<(), ScoopError> {
        FlashPersistence::append_node_batch(self, owner, batch)
    }

    fn sync(&mut self) -> Result<(), ScoopError> {
        FlashPersistence::sync(self)
    }

    fn records_persisted(&self) -> u64 {
        FlashPersistence::records_persisted(self)
    }

    fn ledger(&self) -> &FlashLedger {
        FlashPersistence::ledger(self)
    }
}

/// A long-running server owning one simulated network.
pub struct ServeServer {
    engine: Engine<SimNode>,
    core: AnswerCore,
    admission: AdmissionQueue,
    /// Per-node data-buffer cursors, indexed by node id.
    cursors: Vec<u64>,
    persistence: Option<Box<dyn PersistSeam>>,
    /// Set when the persistence seam failed and the server degraded to
    /// memory-only serving; the seam itself is dropped at that point.
    persist_error: Option<ScoopError>,
    tick: SimDuration,
    stats: ServeStats,
    // Reused per-tick scratch.
    drain_readings: Vec<StoredReading>,
    drain_records: Vec<DurableRecord>,
    batch: Vec<(ClientId, ServeRequest)>,
}

impl ServeServer {
    /// Builds the simulated network and (optionally) opens the durable
    /// store, preloading its records into the query index.
    pub fn new(options: ServeOptions) -> Result<Self, ScoopError> {
        let spec = options.spec;
        spec.validate()?;
        let domain = spec.workload.value_domain;
        let engine = SimBuilder::new(spec).build()?;
        let total_nodes = engine.topology().len();

        let mut core = AnswerCore::new(domain, options.cache_capacity);
        let mut stats = ServeStats::default();
        let persistence: Option<Box<dyn PersistSeam>> = match options.persist_dir {
            Some(dir) => {
                let mut store = Store::open(&dir, StoreOptions::default())?;
                let preloaded = store.scan_all()?;
                stats.readings_preloaded = preloaded.records.len() as u64;
                core.ingest(&preloaded.records);
                Some(Box::new(FlashPersistence::new(
                    DiskBackend::from_store(store),
                    options.flash,
                    total_nodes,
                )))
            }
            None => None,
        };

        Ok(ServeServer {
            engine,
            core,
            admission: AdmissionQueue::new(options.queue_capacity),
            cursors: vec![0; total_nodes],
            persistence,
            persist_error: None,
            tick: options.tick,
            stats,
            drain_readings: Vec::new(),
            drain_records: Vec::new(),
            batch: Vec::new(),
        })
    }

    /// Builds the simulated network over an explicit persistence backend
    /// (flash-accounted like the disk path, no preload). This is how fault
    /// models are wired into the seam: wrap any backend in a
    /// [`scoop_storage::FailpointBackend`] and hand it here.
    pub fn with_backend<B: PersistenceBackend + Send + 'static>(
        options: ServeOptions,
        backend: B,
    ) -> Result<Self, ScoopError> {
        let mut options = options;
        options.persist_dir = None;
        let flash = options.flash;
        let mut server = ServeServer::new(options)?;
        let nodes = server.cursors.len();
        server.persistence = Some(Box::new(FlashPersistence::new(backend, flash, nodes)));
        Ok(server)
    }

    /// Current simulated time of the owned network.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The admission queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.admission.capacity()
    }

    /// Requests currently waiting for the next tick.
    pub fn queued(&self) -> usize {
        self.admission.len()
    }

    /// Serving counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Answering-side counters (cache hits/misses, rows, index size).
    pub fn core_stats(&self) -> CoreStats {
        self.core.stats()
    }

    /// The partial aggregate over every indexed record matching `pred` —
    /// the serve twin of the in-network aggregation path, see
    /// [`AnswerCore::aggregate_answer`].
    pub fn aggregate_answer(
        &mut self,
        pred: &scoop_types::QueryPredicate,
        spec: &scoop_types::AggregateSpec,
    ) -> scoop_types::PartialAggregate {
        self.core.aggregate_answer(pred, spec)
    }

    /// Per-node flash accounting, when persistence is configured.
    pub fn flash_ledger(&self) -> Option<&FlashLedger> {
        self.persistence.as_ref().map(|p| p.ledger())
    }

    /// True while the persistence seam is attached and healthy.
    pub fn persistence_active(&self) -> bool {
        self.persistence.is_some()
    }

    /// The typed error that degraded persistence, if it has failed. Once
    /// set, the seam is detached and the server keeps serving from memory;
    /// ticks and syncs never propagate the failure.
    pub fn persistence_error(&self) -> Option<&ScoopError> {
        self.persist_error.as_ref()
    }

    /// The owned engine (read-only, for inspection).
    pub fn engine(&self) -> &Engine<SimNode> {
        &self.engine
    }

    /// Submits a request for the next tick, or rejects it `Overloaded` when
    /// the bounded queue is full.
    pub fn submit(&mut self, client: ClientId, req: ServeRequest) -> Result<(), Overloaded> {
        let result = self.admission.submit(client, req);
        if result.is_err() {
            self.stats.overloaded += 1;
        }
        result
    }

    /// Runs one admission tick (see the module docs for the four phases) and
    /// appends `(client, response frame)` pairs to `out` — one frame per
    /// admitted request, in admission order.
    pub fn tick(&mut self, out: &mut Vec<(ClientId, Vec<u8>)>) -> Result<(), ScoopError> {
        self.stats.ticks += 1;
        let target = self.engine.now() + self.tick;
        // Phase 1+2: the admitted batch becomes an ordinary event at the
        // tick boundary, then the network lives its life up to it.
        self.engine
            .inject_timer(NodeId::BASESTATION, target, TICK_SERVE);
        self.engine.run_until(target);

        // Phase 3: drain new readings per node, in node-id order.
        self.drain_readings.clear();
        for i in 0..self.cursors.len() {
            let node = NodeId(i as u16);
            let before = self.drain_readings.len();
            let cursor = self.cursors[i];
            self.cursors[i] = self
                .engine
                .node(node)
                .data_buffer()
                .read_new_since(cursor, &mut self.drain_readings);
            // A failing seam degrades the server to memory-only serving:
            // the typed error is kept, the seam is dropped, and the tick —
            // with every query in it — carries on.
            if let Some(mut persist) = self.persistence.take() {
                match persist.append_node_batch(node, &self.drain_readings[before..]) {
                    Ok(()) => self.persistence = Some(persist),
                    Err(e) => {
                        // Count whatever landed (a torn write's prefix is
                        // still durable) before letting the seam go.
                        self.stats.records_persisted = persist.records_persisted();
                        self.persist_error = Some(e);
                    }
                }
            }
        }
        self.stats.readings_drained += self.drain_readings.len() as u64;
        if let Some(persist) = &self.persistence {
            self.stats.records_persisted = persist.records_persisted();
        }
        self.drain_records.clear();
        self.drain_records.extend(
            self.drain_readings
                .iter()
                .map(|s| DurableRecord::from_reading(&s.reading)),
        );
        self.core.ingest(&self.drain_records);

        // Phase 4: drain admissions, coalesce identical predicates, answer
        // each group once, fan the payload out under each request id.
        self.batch.clear();
        self.admission.drain_into(&mut self.batch);
        let mut groups: HashMap<QueryPredicate, std::sync::Arc<Vec<u8>>> = HashMap::new();
        for (client, req) in self.batch.drain(..) {
            let pred = req.predicate();
            let payload = match groups.get(&pred) {
                Some(payload) => std::sync::Arc::clone(payload),
                None => {
                    let payload = self.core.answer_payload(&pred);
                    self.stats.coalesced_groups += 1;
                    groups.insert(pred, std::sync::Arc::clone(&payload));
                    payload
                }
            };
            let mut frame = Vec::with_capacity(9 + payload.len());
            append_rows_frame(req.id, &payload, &mut frame);
            out.push((client, frame));
            self.stats.answered += 1;
        }
        Ok(())
    }

    /// Commits everything appended to the persistence seam so far. A failing
    /// commit point degrades the server exactly like a failing append: the
    /// typed error is retained under [`persistence_error`] and serving
    /// continues from memory — `sync` itself never fails the caller.
    ///
    /// [`persistence_error`]: Self::persistence_error
    pub fn sync(&mut self) -> Result<(), ScoopError> {
        if let Some(mut persist) = self.persistence.take() {
            match persist.sync() {
                Ok(()) => self.persistence = Some(persist),
                Err(e) => self.persist_error = Some(e),
            }
        }
        Ok(())
    }
}

/// One full serve cycle over a [`Transport`]: poll arrivals, submit them
/// (rejections are answered immediately with an `Overloaded` frame), run one
/// tick, deliver every response frame. `reqs` and `frames` are caller-owned
/// scratch reused across calls.
pub fn pump_once<T: Transport>(
    server: &mut ServeServer,
    transport: &mut T,
    reqs: &mut Vec<(ClientId, ServeRequest)>,
    frames: &mut Vec<(ClientId, Vec<u8>)>,
) -> Result<(), ScoopError> {
    reqs.clear();
    transport.poll(reqs)?;
    let mut rejection = Vec::new();
    for (client, req) in reqs.drain(..) {
        if let Err(over) = server.submit(client, req) {
            rejection.clear();
            append_overloaded_frame(&over, &mut rejection);
            transport.deliver(client, &rejection)?;
        }
    }
    frames.clear();
    server.tick(frames)?;
    for (client, frame) in frames.drain(..) {
        transport.deliver(client, &frame)?;
    }
    Ok(())
}
