//! The `scoop-serve` binary.
//!
//! ```text
//! scoop-serve bench [--queries=N] [--concurrency=N] [--queue=N] [--cache=N]
//!                   [--tick-ms=N] [--seed=N] [--scale=paper|small]
//!                   [--history=FILE]
//! scoop-serve smoke [--json]
//! scoop-serve serve --addr=HOST:PORT [--queue=N] [--cache=N] [--tick-ms=N]
//!                   [--scale=paper|small] [--persist=DIR]
//! scoop-serve query --addr=HOST:PORT [--id=N] [--lo=N] [--hi=N]
//!                   [--from-ms=N] [--to-ms=N] [--retry=N] [--seed=N]
//! ```
//!
//! `bench` is the load generator: it runs the same workload twice — cache
//! off, then cache on — refuses to report unless both response streams are
//! byte-identical, prints p50/p99 and queries/s, and (with `--history`)
//! appends one `scale:"serve"` record to `BENCH_history.jsonl` for the CI
//! latency gate. `smoke` prints the deterministic golden report CI compares.
//! `serve` puts the simulated network behind a real TCP socket, pacing
//! simulated ticks against the wall clock. `query` is the matching one-shot
//! TCP client; `--retry=N` opts into bounded retry with seeded jittered
//! backoff when the server answers `Overloaded`, and exhausting the budget
//! exits with the typed give-up error instead of dropping the query.

use scoop_serve::bench::{run_bench, BenchOptions, BenchReport};
use scoop_serve::server::{pump_once, ServeOptions, ServeServer};
use scoop_serve::smoke::{run_smoke, SmokeOptions};
use scoop_serve::tcp::{RetryPolicy, TcpClient, TcpServerTransport};
use scoop_types::{ScenarioSpec, ServeRequest, SimDuration, SimTime, ValueRange};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: scoop-serve <bench|smoke|serve|query> [options]
  bench  [--queries=N] [--concurrency=N] [--queue=N] [--cache=N] [--tick-ms=N]
         [--seed=N] [--scale=paper|small] [--history=FILE]
  smoke  [--json]
  serve  --addr=HOST:PORT [--queue=N] [--cache=N] [--tick-ms=N]
         [--scale=paper|small] [--persist=DIR]
  query  --addr=HOST:PORT [--id=N] [--lo=N] [--hi=N] [--from-ms=N] [--to-ms=N]
         [--retry=N] [--seed=N]
`bench` drives >= --queries point/range queries through the in-memory
transport path twice (cache off/on), proves the response streams
byte-identical, and reports p50/p99 latency and queries/s. `smoke` runs the
fixed-seed hermetic mix CI checks against its committed golden. `serve`
exposes the server over length-prefixed TCP frames; `--persist` additionally
journals drained readings through the flash-accounted seam into a scoop-store
segment log at DIR and preloads it on restart. `query` sends one value/time
range query to a serving process; `--retry=N` opts into bounded retry with
seeded jittered backoff on `Overloaded`, failing with the typed give-up
error once the budget is spent.";

/// `--key=value` pairs and bare `--flag`s, in command-line order.
type ParsedArgs = (Vec<(String, String)>, Vec<String>);

/// Parses `--key=value` and bare `--flag` options against an allowlist.
fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<ParsedArgs, String> {
    let mut values = Vec::new();
    let mut flags = Vec::new();
    for arg in args {
        if let Some(rest) = arg.strip_prefix("--") {
            if let Some((name, value)) = rest.split_once('=') {
                if !value_flags.contains(&name) {
                    return Err(format!("unknown option `--{name}`"));
                }
                values.push((name.to_string(), value.to_string()));
            } else if bool_flags.contains(&rest) {
                flags.push(rest.to_string());
            } else if value_flags.contains(&rest) {
                return Err(format!("--{rest} needs a value (--{rest}=...)"));
            } else {
                return Err(format!("unknown option `--{rest}`"));
            }
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    Ok((values, flags))
}

fn lookup<'a>(values: &'a [(String, String)], name: &str) -> Option<&'a str> {
    values
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn numeric<T: std::str::FromStr>(
    values: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match lookup(values, name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad --{name} value `{raw}`")),
        None => Ok(default),
    }
}

fn scale_spec(values: &[(String, String)]) -> Result<ScenarioSpec, String> {
    match lookup(values, "scale").unwrap_or("paper") {
        "paper" => Ok(ScenarioSpec::paper_defaults()),
        "small" => Ok(ScenarioSpec::small_test()),
        other => Err(format!("bad --scale value `{other}` (paper|small)")),
    }
}

fn render_report(label: &str, r: &BenchReport) -> String {
    format!(
        "{label}: {} queries in {:.2} s -> {:.0} q/s\n\
         \x20 latency p50 {:.3} ms, p99 {:.3} ms ({} ticks over {:.0} simulated s)\n\
         \x20 answered {} / overloaded {} / coalesced groups {} / rows {}\n\
         \x20 cache: {} hits, {} misses, {} invalidated\n\
         \x20 drained {} readings; digest {}",
        r.total_queries,
        r.wall_secs,
        r.qps,
        r.p50_ms,
        r.p99_ms,
        r.ticks,
        r.simulated_ms as f64 / 1e3,
        r.answered,
        r.overloaded,
        r.coalesced_groups,
        r.rows_returned,
        r.cache_hits,
        r.cache_misses,
        r.cache_invalidated,
        r.readings_drained,
        r.digest
    )
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (values, _) = parse(
        args,
        &[
            "queries",
            "concurrency",
            "queue",
            "cache",
            "tick-ms",
            "seed",
            "scale",
            "history",
        ],
        &[],
    )?;
    let mut options = BenchOptions::paper_scale();
    options.spec = scale_spec(&values)?;
    options.total_queries = numeric(&values, "queries", options.total_queries)?;
    options.concurrency = numeric(&values, "concurrency", options.concurrency)?;
    options.queue_capacity = numeric(&values, "queue", options.queue_capacity)?;
    options.cache_capacity = numeric(&values, "cache", options.cache_capacity)?;
    options.seed = numeric(&values, "seed", options.seed)?;
    options.tick = SimDuration::from_millis(numeric(&values, "tick-ms", 1_000u64)?);

    let mut uncached_options = options.clone();
    uncached_options.cache_capacity = 0;
    println!(
        "running {} queries x2 (cache off, then on), {} streams, queue {}...",
        options.total_queries, options.concurrency, options.queue_capacity
    );
    let uncached = run_bench(&uncached_options).map_err(|e| e.to_string())?;
    println!("{}", render_report("uncached", &uncached));
    let cached = run_bench(&options).map_err(|e| e.to_string())?;
    println!("{}", render_report("cached  ", &cached));
    if uncached.digest != cached.digest {
        return Err(format!(
            "BYTE-IDENTITY VIOLATION: cached digest {} != uncached digest {}",
            cached.digest, uncached.digest
        ));
    }
    println!(
        "cache on/off response streams are byte-identical ({})",
        cached.digest
    );

    if let Some(path) = lookup(&values, "history") {
        let record = scoop_lab::HistoryRecord::from_serve_bench(
            cached.total_queries,
            cached.wall_secs,
            cached.qps,
            cached.p50_ms,
            cached.p99_ms,
            options.concurrency,
        );
        record
            .append_to(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("appended scale=\"serve\" record to {path}");
    }
    Ok(())
}

fn cmd_smoke(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse(args, &[], &["json"])?;
    let report = run_smoke(&SmokeOptions::default()).map_err(|e| e.to_string())?;
    if flags.iter().any(|f| f == "json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "serve smoke: {} queries -> {} answered, {} overloaded, {} rows; \
             cache {} hits / {} misses / {} invalidated; digest {}",
            report.queries,
            report.answered,
            report.overloaded,
            report.rows_returned,
            report.cache_hits,
            report.cache_misses,
            report.cache_invalidated,
            report.digest
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (values, _) = parse(
        args,
        &["addr", "queue", "cache", "tick-ms", "scale", "persist"],
        &[],
    )?;
    let addr = lookup(&values, "addr").ok_or("serve needs --addr=HOST:PORT")?;
    let mut options = ServeOptions::new(scale_spec(&values)?);
    options.queue_capacity = numeric(&values, "queue", options.queue_capacity)?;
    options.cache_capacity = numeric(&values, "cache", options.cache_capacity)?;
    let tick_ms: u64 = numeric(&values, "tick-ms", 1_000)?;
    options.tick = SimDuration::from_millis(tick_ms);
    options.persist_dir = lookup(&values, "persist").map(std::path::PathBuf::from);

    let mut server = ServeServer::new(options).map_err(|e| e.to_string())?;
    let mut transport = TcpServerTransport::bind(addr).map_err(|e| e.to_string())?;
    println!(
        "serving on {} (tick {} ms, queue {}, preloaded {} records) — ctrl-c to stop",
        transport.local_addr().map_err(|e| e.to_string())?,
        tick_ms,
        server.queue_capacity(),
        server.stats().readings_preloaded
    );

    // Pace simulated ticks against the wall clock so external clients see a
    // network that advances in real time.
    let mut reqs = Vec::new();
    let mut frames = Vec::new();
    let tick_wall = Duration::from_millis(tick_ms);
    let mut degrade_reported = false;
    loop {
        let began = Instant::now();
        pump_once(&mut server, &mut transport, &mut reqs, &mut frames)
            .map_err(|e| e.to_string())?;
        server.sync().map_err(|e| e.to_string())?;
        // A dying disk degrades persistence to a typed error; the server
        // keeps answering from memory. Say so exactly once.
        if !degrade_reported {
            if let Some(e) = server.persistence_error() {
                eprintln!("scoop-serve: persistence degraded, serving from memory: {e}");
                degrade_reported = true;
            }
        }
        if let Some(rest) = tick_wall.checked_sub(began.elapsed()) {
            std::thread::sleep(rest);
        }
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (values, _) = parse(
        args,
        &[
            "addr", "id", "lo", "hi", "from-ms", "to-ms", "retry", "seed",
        ],
        &[],
    )?;
    let addr = lookup(&values, "addr").ok_or("query needs --addr=HOST:PORT")?;
    let req = ServeRequest {
        id: numeric(&values, "id", 1u64)?,
        values: ValueRange::new(
            numeric(&values, "lo", 0)?,
            numeric(&values, "hi", i32::MAX)?,
        ),
        time_lo: SimTime::from_millis(numeric(&values, "from-ms", 0u64)?),
        time_hi: SimTime::from_millis(numeric(&values, "to-ms", u64::MAX / 2)?),
    };
    let policy = RetryPolicy::new(
        numeric(&values, "retry", 0u32)?,
        numeric(&values, "seed", 1u64)?,
    );
    let mut client = TcpClient::connect(addr).map_err(|e| e.to_string())?;
    let (rows, attempts) = client
        .query_with_retry(&req, &policy)
        .map_err(|e| e.to_string())?;
    println!(
        "request {} answered on attempt {attempts}: {} rows",
        rows.id,
        rows.rows.len()
    );
    for row in &rows.rows {
        println!(
            "  t={} ms node={} attr={} value={}",
            row.time_ms, row.node.0, row.attribute, row.value
        );
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("bench") => cmd_bench(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if let Err(message) = result {
        eprintln!("scoop-serve: {message}");
        std::process::exit(1);
    }
}
