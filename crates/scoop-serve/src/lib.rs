//! scoop-serve — a query-serving front end over one simulated Scoop network.
//!
//! The paper's basestation compiles storage indexes *and answers queries over
//! the network's data*. Everything before this crate exercised the first
//! half; `scoop-serve` builds the second: a long-running server that owns a
//! simulated network (engine + storage, built from a [`ScenarioSpec`]) and
//! answers externally submitted point/range queries about it while the
//! simulation keeps running — under heavy traffic.
//!
//! The moving parts, bottom up:
//!
//! * [`transport`] — how requests arrive and frames leave. The in-memory
//!   implementation is hermetic and deterministic (CI's golden smoke runs on
//!   it); the [`tcp`] module carries the same length-prefixed frames over a
//!   real socket.
//! * [`admission`] — a bounded queue in front of the tick loop. Over-budget
//!   bursts get a typed `Overloaded` rejection, never a panic or a silent
//!   drop.
//! * [`index`]/[`cache`]/[`core`] — the answering side: a value-bucketed,
//!   time-sorted index, plus a predicate-keyed answer cache whose hits are
//!   provably byte-identical to evaluation (the cache stores encoded
//!   payloads and invalidates on every tick's new readings).
//! * [`server`] — the tick loop tying it together. Admitted batches enter
//!   the region-sharded event loop as ordinary injected events, so the
//!   engine's determinism guarantees extend to the serving tier.
//! * [`bench`]/[`smoke`] — the load generator (millions of queries over the
//!   in-memory transport, p50/p99 + qps) and the fixed-seed golden smoke CI
//!   runs.
//!
//! [`ScenarioSpec`]: scoop_types::ScenarioSpec

#![warn(missing_docs)]

pub mod admission;
pub mod bench;
pub mod cache;
pub mod core;
pub mod index;
pub mod server;
pub mod smoke;
pub mod tcp;
pub mod transport;

pub use admission::AdmissionQueue;
pub use bench::{run_bench, BenchOptions, BenchReport};
pub use cache::{AnswerCache, TouchedValues};
pub use core::{AnswerCore, CoreStats};
pub use index::ServeIndex;
pub use server::{pump_once, ServeOptions, ServeServer, ServeStats};
pub use smoke::{run_smoke, SmokeOptions, SmokeReport};
pub use tcp::{QueryError, RetriesExhausted, RetryPolicy, TcpClient, TcpServerTransport};
pub use transport::{ClientId, InMemoryClient, InMemoryHub, InMemoryTransport, Transport};
