//! Bounded query admission with typed backpressure.
//!
//! Requests wait in a fixed-capacity queue until the next server tick drains
//! them into the event loop. When the queue is full, `submit` returns a typed
//! [`Overloaded`] — the caller turns it into a response frame, so every
//! request gets exactly one reply: rows, or an explicit rejection. Nothing
//! is ever dropped silently and nothing buffers without bound.

use crate::transport::ClientId;
use scoop_types::{Overloaded, ServeRequest};
use std::collections::VecDeque;

/// The bounded admission queue in front of the server tick.
pub struct AdmissionQueue {
    capacity: usize,
    queue: VecDeque<(ClientId, ServeRequest)>,
    /// Requests accepted over this queue's life.
    pub admitted: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` requests per drain.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            admitted: 0,
            rejected: 0,
        }
    }

    /// The queue's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a request, or rejects it with a typed [`Overloaded`] if the
    /// queue is full.
    pub fn submit(&mut self, client: ClientId, req: ServeRequest) -> Result<(), Overloaded> {
        if self.queue.len() >= self.capacity {
            self.rejected += 1;
            return Err(Overloaded {
                id: req.id,
                queued: self.queue.len() as u32,
                capacity: self.capacity as u32,
            });
        }
        self.admitted += 1;
        self.queue.push_back((client, req));
        Ok(())
    }

    /// Moves every waiting request into `out`, in arrival order.
    pub fn drain_into(&mut self, out: &mut Vec<(ClientId, ServeRequest)>) {
        out.extend(self.queue.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{SimTime, ValueRange};

    fn req(id: u64) -> ServeRequest {
        ServeRequest {
            id,
            values: ValueRange::new(0, 1),
            time_lo: SimTime::ZERO,
            time_hi: SimTime::from_secs(1),
        }
    }

    #[test]
    fn fills_to_capacity_then_rejects_with_typed_overloaded() {
        let mut q = AdmissionQueue::new(3);
        for id in 0..3 {
            assert!(q.submit(7, req(id)).is_ok());
        }
        let err = q.submit(7, req(99)).unwrap_err();
        assert_eq!(err.id, 99);
        assert_eq!(err.queued, 3);
        assert_eq!(err.capacity, 3);
        assert_eq!(q.admitted, 3);
        assert_eq!(q.rejected, 1);

        // Draining frees the whole capacity again, in arrival order.
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(
            out.iter().map(|(_, r)| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(q.is_empty());
        assert!(q.submit(7, req(100)).is_ok());
    }
}
