//! The predicate-keyed answer cache and its invalidation machinery.
//!
//! The cache maps a [`QueryPredicate`] to the *encoded rows payload* of its
//! answer — the exact bytes after `id | status` of a rows frame. Storing
//! bytes rather than rows is what makes the cached path provably
//! byte-identical to the uncached one: a hit splices the stored payload under
//! the new request id, producing the same frame an evaluation would.
//!
//! Invalidation is explicit and conservative: every server tick, the set of
//! `(value, sample-time)` points that just entered the index is summarized in
//! a [`TouchedValues`] table, and every cached predicate that *could* match
//! any of them is dropped. Eviction is FIFO at a fixed capacity, so memory is
//! bounded and the eviction order is deterministic.

use scoop_types::{QueryPredicate, Value, ValueRange};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Per-tick summary of which `(value, time)` points gained new readings:
/// for each domain value, the min/max sample time of this tick's arrivals.
///
/// A cached predicate is stale iff some value in its range was touched at a
/// time inside its window — checked in O(predicate width) against this
/// table, instead of O(new readings) per cache entry.
pub struct TouchedValues {
    domain_lo: Value,
    /// `(min, max)` sample time (ms) per domain value, `u64::MAX`/`0` when
    /// untouched this tick.
    spans: Vec<(u64, u64)>,
    /// Span over values outside the domain (rare: preloaded foreign data).
    overflow: Option<(u64, u64)>,
    any: bool,
}

impl TouchedValues {
    /// An empty table over `domain`.
    pub fn new(domain: ValueRange) -> Self {
        TouchedValues {
            domain_lo: domain.lo,
            spans: vec![(u64::MAX, 0); domain.width() as usize],
            overflow: None,
            any: false,
        }
    }

    /// Forgets the previous tick's touches.
    pub fn clear(&mut self) {
        if self.any {
            for s in &mut self.spans {
                *s = (u64::MAX, 0);
            }
            self.overflow = None;
            self.any = false;
        }
    }

    /// Records that a reading `(value, time_ms)` entered the index.
    pub fn record(&mut self, value: Value, time_ms: u64) {
        self.any = true;
        let i = value - self.domain_lo;
        let span = if i >= 0 && (i as usize) < self.spans.len() {
            &mut self.spans[i as usize]
        } else {
            self.overflow.get_or_insert((u64::MAX, 0))
        };
        span.0 = span.0.min(time_ms);
        span.1 = span.1.max(time_ms);
    }

    /// True if nothing was recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        !self.any
    }

    /// Could an answer for `pred` have changed, given this tick's touches?
    pub fn dirties(&self, pred: &QueryPredicate) -> bool {
        if !self.any {
            return false;
        }
        // Clip the predicate's value range to the domain; an empty clip just
        // skips the loop.
        let lo = pred.value_lo.max(self.domain_lo);
        let hi = pred
            .value_hi
            .min(self.domain_lo + self.spans.len() as Value - 1);
        let mut v = lo;
        while v <= hi {
            let span = self.spans[(v - self.domain_lo) as usize];
            if span.0 <= pred.time_hi_ms && span.1 >= pred.time_lo_ms {
                return true;
            }
            v += 1;
        }
        if let Some((mn, mx)) = self.overflow {
            // Overflow values are not range-resolved; be conservative.
            if mn <= pred.time_hi_ms && mx >= pred.time_lo_ms {
                return true;
            }
        }
        false
    }
}

/// Bounded predicate → encoded-payload cache with FIFO eviction.
pub struct AnswerCache {
    capacity: usize,
    map: HashMap<QueryPredicate, Arc<Vec<u8>>>,
    /// Insertion order; exactly the map's key set.
    order: VecDeque<QueryPredicate>,
    /// Cache hits served.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries dropped because new readings dirtied them.
    pub invalidated: u64,
    /// Entries dropped to stay within capacity.
    pub evicted: u64,
}

impl AnswerCache {
    /// A cache holding at most `capacity` answers (`capacity > 0`).
    pub fn new(capacity: usize) -> Self {
        AnswerCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            invalidated: 0,
            evicted: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The cached payload for `pred`, counting the hit or miss.
    pub fn get(&mut self, pred: &QueryPredicate) -> Option<Arc<Vec<u8>>> {
        match self.map.get(pred) {
            Some(payload) => {
                self.hits += 1;
                Some(Arc::clone(payload))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `payload` for `pred`, evicting the oldest entry if full.
    /// Inserting an already-present predicate refreshes the payload without
    /// duplicating the order entry.
    pub fn insert(&mut self, pred: QueryPredicate, payload: Arc<Vec<u8>>) {
        if self.map.insert(pred, payload).is_some() {
            return;
        }
        self.order.push_back(pred);
        if self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.evicted += 1;
            }
        }
    }

    /// Drops every entry whose answer could include one of this tick's new
    /// readings.
    pub fn invalidate(&mut self, touched: &TouchedValues) {
        if touched.is_empty() || self.map.is_empty() {
            return;
        }
        let map = &mut self.map;
        let mut dropped = 0u64;
        self.order.retain(|pred| {
            if touched.dirties(pred) {
                map.remove(pred);
                dropped += 1;
                false
            } else {
                true
            }
        });
        self.invalidated += dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(lo: Value, hi: Value, tlo: u64, thi: u64) -> QueryPredicate {
        QueryPredicate {
            value_lo: lo,
            value_hi: hi,
            time_lo_ms: tlo,
            time_hi_ms: thi,
        }
    }

    fn payload(tag: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![tag; 4])
    }

    #[test]
    fn hit_miss_and_fifo_eviction() {
        let mut cache = AnswerCache::new(2);
        assert!(cache.get(&pred(0, 1, 0, 10)).is_none());
        cache.insert(pred(0, 1, 0, 10), payload(1));
        cache.insert(pred(2, 3, 0, 10), payload(2));
        assert_eq!(*cache.get(&pred(0, 1, 0, 10)).unwrap(), vec![1; 4]);
        // Third insert evicts the oldest (FIFO, not LRU).
        cache.insert(pred(4, 5, 0, 10), payload(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&pred(0, 1, 0, 10)).is_none(), "oldest evicted");
        assert!(cache.get(&pred(2, 3, 0, 10)).is_some());
        assert_eq!(cache.evicted, 1);
        assert_eq!(cache.hits, 2);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_order() {
        let mut cache = AnswerCache::new(2);
        cache.insert(pred(0, 1, 0, 10), payload(1));
        cache.insert(pred(0, 1, 0, 10), payload(9));
        assert_eq!(cache.len(), 1);
        assert_eq!(*cache.get(&pred(0, 1, 0, 10)).unwrap(), vec![9; 4]);
        cache.insert(pred(2, 3, 0, 10), payload(2));
        cache.insert(pred(4, 5, 0, 10), payload(3));
        assert_eq!(cache.len(), 2, "capacity still respected");
    }

    #[test]
    fn invalidation_drops_exactly_the_dirtied_predicates() {
        let domain = ValueRange::new(0, 9);
        let mut cache = AnswerCache::new(16);
        cache.insert(pred(0, 2, 0, 100), payload(1)); // value overlap, time overlap
        cache.insert(pred(0, 2, 200, 300), payload(2)); // value overlap, time disjoint
        cache.insert(pred(5, 7, 0, 100), payload(3)); // value disjoint
        let mut touched = TouchedValues::new(domain);
        touched.record(1, 50);
        cache.invalidate(&touched);
        assert!(cache.get(&pred(0, 2, 0, 100)).is_none(), "dirtied");
        assert!(cache.get(&pred(0, 2, 200, 300)).is_some(), "time disjoint");
        assert!(cache.get(&pred(5, 7, 0, 100)).is_some(), "value disjoint");
        assert_eq!(cache.invalidated, 1);

        // Window edges are inclusive: a touch at exactly time_hi dirties.
        let mut touched = TouchedValues::new(domain);
        touched.record(6, 100);
        cache.invalidate(&touched);
        assert!(cache.get(&pred(5, 7, 0, 100)).is_none());
    }

    #[test]
    fn touched_values_resets_and_handles_out_of_domain() {
        let domain = ValueRange::new(0, 4);
        let mut touched = TouchedValues::new(domain);
        assert!(touched.is_empty());
        touched.record(99, 10); // out of domain -> overflow span
        assert!(!touched.is_empty());
        assert!(
            touched.dirties(&pred(0, 1, 5, 15)),
            "overflow touches are conservative: any window overlap dirties"
        );
        assert!(!touched.dirties(&pred(0, 1, 20, 30)), "window disjoint");
        touched.clear();
        assert!(touched.is_empty());
        assert!(!touched.dirties(&pred(0, 4, 0, 100)));
    }

    #[test]
    fn predicates_clipped_to_domain_edges_do_not_panic() {
        let domain = ValueRange::new(0, 4);
        let mut touched = TouchedValues::new(domain);
        touched.record(0, 10);
        touched.record(4, 10);
        assert!(touched.dirties(&pred(-100, 100, 0, 20)), "superset range");
        assert!(touched.dirties(&pred(4, 90, 0, 20)), "clipped high end");
        assert!(!touched.dirties(&pred(-100, -1, 0, 20)), "entirely below");
        assert!(!touched.dirties(&pred(50, 90, 0, 20)), "entirely above");
    }
}
