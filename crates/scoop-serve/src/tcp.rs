//! Length-prefixed TCP carrying the serve wire schema.
//!
//! Framing is a little-endian `u32` byte length followed by that many bytes:
//! requests are [`SERVE_REQUEST_LEN`]-byte encoded [`ServeRequest`]s, responses
//! are the frames [`ServeResponse`] encodes. The server side is fully
//! non-blocking and single-threaded — [`TcpServerTransport::poll`] accepts new
//! connections, reads whatever bytes are available, and surfaces every
//! complete request; partial reads and writes simply resume on the next poll.
//! Everything above the [`Transport`] trait is byte-for-byte the code the
//! in-memory transport runs, which is what keeps the hermetic CI proofs
//! meaningful for the socket path.

use crate::transport::{ClientId, Transport};
use scoop_types::{
    Overloaded, ScoopError, ServeRequest, ServeResponse, ServeRows, SERVE_REQUEST_LEN,
};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on a framed payload; anything larger is a corrupt or hostile
/// stream and drops the connection.
const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

fn io_err(what: &str, e: std::io::Error) -> ScoopError {
    ScoopError::Simulation(format!("tcp transport: {what}: {e}"))
}

/// Appends `payload` as one length-prefixed frame.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into whole frames.
    inbuf: Vec<u8>,
    /// Frames queued for this connection but not yet fully written.
    outbuf: Vec<u8>,
    /// How much of `outbuf` is already on the wire.
    written: usize,
    /// Set when the peer vanished; reaped at the end of the poll.
    dead: bool,
}

impl Conn {
    /// Moves every complete frame out of `inbuf` as a decoded request.
    fn parse_requests(&mut self, client: ClientId, out: &mut Vec<(ClientId, ServeRequest)>) {
        let mut consumed = 0;
        while self.inbuf.len() - consumed >= 4 {
            let len = u32::from_le_bytes(
                self.inbuf[consumed..consumed + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            if len > MAX_FRAME_BYTES || len as usize != SERVE_REQUEST_LEN {
                self.dead = true;
                break;
            }
            let end = consumed + 4 + len as usize;
            if self.inbuf.len() < end {
                break;
            }
            let body: &[u8; SERVE_REQUEST_LEN] = self.inbuf[consumed + 4..end]
                .try_into()
                .expect("length checked above");
            match ServeRequest::decode(body) {
                Ok(req) => out.push((client, req)),
                Err(_) => {
                    // A malformed request poisons the stream: drop the
                    // connection rather than guess at resynchronization.
                    self.dead = true;
                    break;
                }
            }
            consumed = end;
        }
        if consumed > 0 {
            self.inbuf.drain(..consumed);
        }
    }

    /// Reads whatever the socket has; true EOF marks the connection dead.
    fn fill(&mut self) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Writes as much of the pending output as the socket will take.
    fn flush_pending(&mut self) {
        while self.written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.written > 0 && self.written == self.outbuf.len() {
            self.outbuf.clear();
            self.written = 0;
        }
    }
}

/// The server half of the TCP transport: accepts connections and frames.
pub struct TcpServerTransport {
    listener: TcpListener,
    conns: HashMap<ClientId, Conn>,
    next_client: ClientId,
}

impl TcpServerTransport {
    /// Binds a non-blocking listener on `addr`.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self, ScoopError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("set_nonblocking", e))?;
        Ok(TcpServerTransport {
            listener,
            conns: HashMap::new(),
            next_client: 0,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ScoopError> {
        self.listener
            .local_addr()
            .map_err(|e| io_err("local_addr", e))
    }

    /// Connections currently open.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let id = self.next_client;
                    self.next_client += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            inbuf: Vec::new(),
                            outbuf: Vec::new(),
                            written: 0,
                            dead: false,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }
}

impl Transport for TcpServerTransport {
    fn poll(&mut self, out: &mut Vec<(ClientId, ServeRequest)>) -> Result<(), ScoopError> {
        self.accept_new();
        // Deterministic order within one server: iterate clients by id.
        let mut ids: Vec<ClientId> = self.conns.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let conn = self.conns.get_mut(&id).expect("listed connection");
            conn.flush_pending();
            conn.fill();
            conn.parse_requests(id, out);
        }
        self.conns.retain(|_, c| !c.dead);
        Ok(())
    }

    fn deliver(&mut self, client: ClientId, frame: &[u8]) -> Result<(), ScoopError> {
        // A client that disconnected mid-flight just misses its answer;
        // sockets are lossy and that is not a server error.
        if let Some(conn) = self.conns.get_mut(&client) {
            push_frame(&mut conn.outbuf, frame);
            conn.flush_pending();
        }
        Ok(())
    }
}

/// A simple blocking client for tests and the load generator's TCP mode.
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connects (blocking) to a serving process.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ScoopError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("set_nodelay", e))?;
        Ok(TcpClient { stream })
    }

    /// Sends one request as a length-prefixed frame.
    pub fn send(&mut self, req: &ServeRequest) -> Result<(), ScoopError> {
        let mut frame = Vec::with_capacity(4 + SERVE_REQUEST_LEN);
        let mut body = [0u8; SERVE_REQUEST_LEN];
        req.encode_into(&mut body);
        push_frame(&mut frame, &body);
        self.stream.write_all(&frame).map_err(|e| io_err("send", e))
    }

    /// Sends `req` and retries on `Overloaded` under `policy`: each
    /// rejection sleeps the next seeded-jittered backoff delay and resends.
    ///
    /// Returns the rows together with the number of attempts made, or a
    /// typed [`QueryError`]: either the transport failed outright, or the
    /// retry budget ran out and [`RetriesExhausted`] carries the last
    /// rejection. With `policy.max_retries == 0` this is exactly
    /// [`send`](Self::send) + [`recv`](Self::recv) — the first `Overloaded`
    /// surfaces immediately as the typed give-up error, never a silent drop.
    pub fn query_with_retry(
        &mut self,
        req: &ServeRequest,
        policy: &RetryPolicy,
    ) -> Result<(ServeRows, u32), QueryError> {
        for attempt in 0..=policy.max_retries {
            self.send(req).map_err(QueryError::Transport)?;
            let response = self.recv().map_err(QueryError::Transport)?;
            if response.id() != req.id {
                return Err(QueryError::Transport(ScoopError::Simulation(format!(
                    "tcp transport: response id {} does not answer request {}",
                    response.id(),
                    req.id
                ))));
            }
            match response {
                ServeResponse::Rows(rows) => return Ok((rows, attempt + 1)),
                ServeResponse::Overloaded(last) => {
                    if attempt == policy.max_retries {
                        return Err(QueryError::RetriesExhausted(RetriesExhausted {
                            id: req.id,
                            attempts: attempt + 1,
                            last,
                        }));
                    }
                    std::thread::sleep(policy.backoff(attempt));
                }
            }
        }
        unreachable!("the loop returns on every path")
    }

    /// Blocks until one whole response frame arrives and decodes it.
    pub fn recv(&mut self) -> Result<ServeResponse, ScoopError> {
        let mut len = [0u8; 4];
        self.stream
            .read_exact(&mut len)
            .map_err(|e| io_err("recv length", e))?;
        let len = u32::from_le_bytes(len);
        if len > MAX_FRAME_BYTES {
            return Err(ScoopError::Simulation(format!(
                "tcp transport: oversized response frame ({len} bytes)"
            )));
        }
        let mut body = vec![0u8; len as usize];
        self.stream
            .read_exact(&mut body)
            .map_err(|e| io_err("recv body", e))?;
        ServeResponse::decode(&body)
    }
}

/// Bounded retry with seeded, jittered exponential backoff for `Overloaded`
/// rejections. Opt-in: the default budget of zero retries reproduces the
/// plain send/recv behavior exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt; `0` means never retry.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt up to `cap`.
    pub base: Duration,
    /// Ceiling on any single backoff delay.
    pub cap: Duration,
    /// Seeds the jitter so a retry schedule is reproducible.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `max_retries` retries under the given jitter seed,
    /// backing off from 50 ms up to 2 s.
    pub fn new(max_retries: u32, seed: u64) -> Self {
        RetryPolicy {
            max_retries,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed,
        }
    }

    /// The delay before retry number `attempt` (0-based): exponential
    /// `base << attempt` capped at `cap`, scaled by a deterministic jitter
    /// factor in `[0.5, 1.0)` drawn from `(seed, attempt)`. Full-throttle
    /// synchronization is what kills an overloaded server, so every client
    /// seed spreads its retries differently — but the same seed always
    /// produces the same schedule.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        let jitter =
            0.5 + (mix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        exp.mul_f64(jitter)
    }
}

/// SplitMix64 finalizer: one 64-bit hash step, for jitter only.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The typed give-up error: every attempt in the retry budget was rejected
/// `Overloaded`. Carries the last rejection so the caller can see the queue
/// pressure it lost to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetriesExhausted {
    /// The request that never got through.
    pub id: u64,
    /// Attempts made (initial try plus retries).
    pub attempts: u32,
    /// The final `Overloaded` rejection.
    pub last: Overloaded,
}

impl std::fmt::Display for RetriesExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request {} gave up after {} attempts: {}",
            self.id, self.attempts, self.last
        )
    }
}

/// Why [`TcpClient::query_with_retry`] did not return rows.
#[derive(Debug)]
pub enum QueryError {
    /// The socket or the wire protocol failed; retrying cannot help.
    Transport(ScoopError),
    /// The server kept rejecting until the retry budget ran out.
    RetriesExhausted(RetriesExhausted),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Transport(e) => write!(f, "{e}"),
            QueryError::RetriesExhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{SimTime, ValueRange};

    fn req(id: u64) -> ServeRequest {
        ServeRequest {
            id,
            values: ValueRange::new(0, 5),
            time_lo: SimTime::ZERO,
            time_hi: SimTime::from_secs(60),
        }
    }

    /// Polls until `want` requests arrived or the deadline passes. The
    /// kernel delivers loopback bytes asynchronously, so one poll may race
    /// the client's write.
    fn poll_until(
        transport: &mut TcpServerTransport,
        out: &mut Vec<(ClientId, ServeRequest)>,
        want: usize,
    ) {
        for _ in 0..2000 {
            transport.poll(out).unwrap();
            if out.len() >= want {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("requests never arrived: got {} of {want}", out.len());
    }

    #[test]
    fn requests_and_responses_round_trip_over_a_real_socket() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TcpClient::connect(addr).unwrap();
        client.send(&req(7)).unwrap();
        client.send(&req(8)).unwrap();

        let mut out = Vec::new();
        poll_until(&mut server, &mut out, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.id, 7);
        assert_eq!(out[1].1.id, 8);
        let cid = out[0].0;
        assert_eq!(out[1].0, cid, "same connection, same client id");

        // Echo back two frames; the blocking client reads them in order.
        let mut frame = Vec::new();
        scoop_types::append_rows_frame(
            7,
            &{
                let mut p = Vec::new();
                scoop_types::append_rows_payload(&[], &mut p);
                p
            },
            &mut frame,
        );
        server.deliver(cid, &frame).unwrap();
        let got = client.recv().unwrap();
        assert_eq!(got.id(), 7);

        // Unknown client delivery is a no-op, not an error.
        server.deliver(9999, &frame).unwrap();
    }

    #[test]
    fn malformed_frames_drop_the_connection_not_the_server() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mut bad = TcpStream::connect(addr).unwrap();
        // A frame whose length is not SERVE_REQUEST_LEN.
        bad.write_all(&3u32.to_le_bytes()).unwrap();
        bad.write_all(&[1, 2, 3]).unwrap();
        bad.flush().unwrap();

        let mut out = Vec::new();
        for _ in 0..2000 {
            server.poll(&mut out).unwrap();
            if server.connections() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(out.is_empty());
        assert_eq!(server.connections(), 0, "poisoned connection reaped");

        // The server still accepts and serves a well-formed client.
        let mut good = TcpClient::connect(addr).unwrap();
        good.send(&req(1)).unwrap();
        poll_until(&mut server, &mut out, 1);
        assert_eq!(out[0].1.id, 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy::new(8, 42);
        let again = RetryPolicy::new(8, 42);
        let other = RetryPolicy::new(8, 43);
        let mut any_seed_difference = false;
        for attempt in 0..8 {
            let d = policy.backoff(attempt);
            assert_eq!(d, again.backoff(attempt), "same seed, same schedule");
            any_seed_difference |= d != other.backoff(attempt);
            // Jitter stays inside [exp/2, exp), and exp itself is capped.
            let exp = policy.base.saturating_mul(1 << attempt).min(policy.cap);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} under the floor");
            assert!(d < exp, "attempt {attempt}: {d:?} over the ceiling");
        }
        assert!(any_seed_difference, "different seeds must spread retries");
        // Far-out attempts saturate at the cap instead of overflowing.
        assert!(policy.backoff(60) <= policy.cap);
    }

    /// A scripted responder: answers each request `Overloaded` until its id
    /// has been seen `relent_after` times, then answers empty rows. Runs the
    /// real server transport on a background thread until dropped.
    struct Responder {
        stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
        handle: Option<std::thread::JoinHandle<HashMap<u64, u32>>>,
        addr: SocketAddr,
    }

    impl Responder {
        fn start(relent_after: u32) -> Self {
            let mut server = TcpServerTransport::bind("127.0.0.1:0").unwrap();
            let addr = server.local_addr().unwrap();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let flag = std::sync::Arc::clone(&stop);
            let handle = std::thread::spawn(move || {
                let mut seen: HashMap<u64, u32> = HashMap::new();
                let mut out = Vec::new();
                while !flag.load(std::sync::atomic::Ordering::Relaxed) {
                    out.clear();
                    server.poll(&mut out).unwrap();
                    for (client, request) in out.drain(..) {
                        let attempts = seen.entry(request.id).or_insert(0);
                        *attempts += 1;
                        let mut frame = Vec::new();
                        if *attempts <= relent_after {
                            scoop_types::append_overloaded_frame(
                                &Overloaded {
                                    id: request.id,
                                    queued: 9,
                                    capacity: 9,
                                },
                                &mut frame,
                            );
                        } else {
                            let mut payload = Vec::new();
                            scoop_types::append_rows_payload(&[], &mut payload);
                            scoop_types::append_rows_frame(request.id, &payload, &mut frame);
                        }
                        server.deliver(client, &frame).unwrap();
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                seen
            });
            Responder {
                stop,
                handle: Some(handle),
                addr,
            }
        }

        fn finish(mut self) -> HashMap<u64, u32> {
            self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
            self.handle.take().expect("not yet joined").join().unwrap()
        }
    }

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(5),
            seed: 7,
        }
    }

    #[test]
    fn retry_rides_out_transient_overload() {
        let responder = Responder::start(2);
        let mut client = TcpClient::connect(responder.addr).unwrap();
        let (rows, attempts) = client
            .query_with_retry(&req(11), &fast_policy(5))
            .expect("relents on the third attempt");
        assert_eq!(rows.id, 11);
        assert_eq!(attempts, 3, "two rejections, then rows");
        let seen = responder.finish();
        assert_eq!(seen.get(&11), Some(&3), "server saw every attempt");
    }

    #[test]
    fn exhausted_retries_surface_the_typed_give_up_error() {
        let responder = Responder::start(u32::MAX);
        let mut client = TcpClient::connect(responder.addr).unwrap();
        let err = client
            .query_with_retry(&req(5), &fast_policy(3))
            .expect_err("the responder never relents");
        match err {
            QueryError::RetriesExhausted(gave_up) => {
                assert_eq!(gave_up.id, 5);
                assert_eq!(gave_up.attempts, 4, "initial try plus three retries");
                assert_eq!(gave_up.last.capacity, 9);
                let shown = gave_up.to_string();
                assert!(shown.contains("gave up after 4 attempts"), "{shown}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        // Zero retries: the first rejection is the typed error, immediately.
        let err = client
            .query_with_retry(&req(6), &fast_policy(0))
            .expect_err("no budget");
        match err {
            QueryError::RetriesExhausted(gave_up) => assert_eq!(gave_up.attempts, 1),
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        responder.finish();
    }
}
