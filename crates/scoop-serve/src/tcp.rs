//! Length-prefixed TCP carrying the serve wire schema.
//!
//! Framing is a little-endian `u32` byte length followed by that many bytes:
//! requests are [`SERVE_REQUEST_LEN`]-byte encoded [`ServeRequest`]s, responses
//! are the frames [`ServeResponse`] encodes. The server side is fully
//! non-blocking and single-threaded — [`TcpServerTransport::poll`] accepts new
//! connections, reads whatever bytes are available, and surfaces every
//! complete request; partial reads and writes simply resume on the next poll.
//! Everything above the [`Transport`] trait is byte-for-byte the code the
//! in-memory transport runs, which is what keeps the hermetic CI proofs
//! meaningful for the socket path.

use crate::transport::{ClientId, Transport};
use scoop_types::{ScoopError, ServeRequest, ServeResponse, SERVE_REQUEST_LEN};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

/// Upper bound on a framed payload; anything larger is a corrupt or hostile
/// stream and drops the connection.
const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

fn io_err(what: &str, e: std::io::Error) -> ScoopError {
    ScoopError::Simulation(format!("tcp transport: {what}: {e}"))
}

/// Appends `payload` as one length-prefixed frame.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into whole frames.
    inbuf: Vec<u8>,
    /// Frames queued for this connection but not yet fully written.
    outbuf: Vec<u8>,
    /// How much of `outbuf` is already on the wire.
    written: usize,
    /// Set when the peer vanished; reaped at the end of the poll.
    dead: bool,
}

impl Conn {
    /// Moves every complete frame out of `inbuf` as a decoded request.
    fn parse_requests(&mut self, client: ClientId, out: &mut Vec<(ClientId, ServeRequest)>) {
        let mut consumed = 0;
        while self.inbuf.len() - consumed >= 4 {
            let len = u32::from_le_bytes(
                self.inbuf[consumed..consumed + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            if len > MAX_FRAME_BYTES || len as usize != SERVE_REQUEST_LEN {
                self.dead = true;
                break;
            }
            let end = consumed + 4 + len as usize;
            if self.inbuf.len() < end {
                break;
            }
            let body: &[u8; SERVE_REQUEST_LEN] = self.inbuf[consumed + 4..end]
                .try_into()
                .expect("length checked above");
            match ServeRequest::decode(body) {
                Ok(req) => out.push((client, req)),
                Err(_) => {
                    // A malformed request poisons the stream: drop the
                    // connection rather than guess at resynchronization.
                    self.dead = true;
                    break;
                }
            }
            consumed = end;
        }
        if consumed > 0 {
            self.inbuf.drain(..consumed);
        }
    }

    /// Reads whatever the socket has; true EOF marks the connection dead.
    fn fill(&mut self) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Writes as much of the pending output as the socket will take.
    fn flush_pending(&mut self) {
        while self.written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.written > 0 && self.written == self.outbuf.len() {
            self.outbuf.clear();
            self.written = 0;
        }
    }
}

/// The server half of the TCP transport: accepts connections and frames.
pub struct TcpServerTransport {
    listener: TcpListener,
    conns: HashMap<ClientId, Conn>,
    next_client: ClientId,
}

impl TcpServerTransport {
    /// Binds a non-blocking listener on `addr`.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self, ScoopError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("set_nonblocking", e))?;
        Ok(TcpServerTransport {
            listener,
            conns: HashMap::new(),
            next_client: 0,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ScoopError> {
        self.listener
            .local_addr()
            .map_err(|e| io_err("local_addr", e))
    }

    /// Connections currently open.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let id = self.next_client;
                    self.next_client += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            inbuf: Vec::new(),
                            outbuf: Vec::new(),
                            written: 0,
                            dead: false,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }
}

impl Transport for TcpServerTransport {
    fn poll(&mut self, out: &mut Vec<(ClientId, ServeRequest)>) -> Result<(), ScoopError> {
        self.accept_new();
        // Deterministic order within one server: iterate clients by id.
        let mut ids: Vec<ClientId> = self.conns.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let conn = self.conns.get_mut(&id).expect("listed connection");
            conn.flush_pending();
            conn.fill();
            conn.parse_requests(id, out);
        }
        self.conns.retain(|_, c| !c.dead);
        Ok(())
    }

    fn deliver(&mut self, client: ClientId, frame: &[u8]) -> Result<(), ScoopError> {
        // A client that disconnected mid-flight just misses its answer;
        // sockets are lossy and that is not a server error.
        if let Some(conn) = self.conns.get_mut(&client) {
            push_frame(&mut conn.outbuf, frame);
            conn.flush_pending();
        }
        Ok(())
    }
}

/// A simple blocking client for tests and the load generator's TCP mode.
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connects (blocking) to a serving process.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ScoopError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("set_nodelay", e))?;
        Ok(TcpClient { stream })
    }

    /// Sends one request as a length-prefixed frame.
    pub fn send(&mut self, req: &ServeRequest) -> Result<(), ScoopError> {
        let mut frame = Vec::with_capacity(4 + SERVE_REQUEST_LEN);
        let mut body = [0u8; SERVE_REQUEST_LEN];
        req.encode_into(&mut body);
        push_frame(&mut frame, &body);
        self.stream.write_all(&frame).map_err(|e| io_err("send", e))
    }

    /// Blocks until one whole response frame arrives and decodes it.
    pub fn recv(&mut self) -> Result<ServeResponse, ScoopError> {
        let mut len = [0u8; 4];
        self.stream
            .read_exact(&mut len)
            .map_err(|e| io_err("recv length", e))?;
        let len = u32::from_le_bytes(len);
        if len > MAX_FRAME_BYTES {
            return Err(ScoopError::Simulation(format!(
                "tcp transport: oversized response frame ({len} bytes)"
            )));
        }
        let mut body = vec![0u8; len as usize];
        self.stream
            .read_exact(&mut body)
            .map_err(|e| io_err("recv body", e))?;
        ServeResponse::decode(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{SimTime, ValueRange};

    fn req(id: u64) -> ServeRequest {
        ServeRequest {
            id,
            values: ValueRange::new(0, 5),
            time_lo: SimTime::ZERO,
            time_hi: SimTime::from_secs(60),
        }
    }

    /// Polls until `want` requests arrived or the deadline passes. The
    /// kernel delivers loopback bytes asynchronously, so one poll may race
    /// the client's write.
    fn poll_until(
        transport: &mut TcpServerTransport,
        out: &mut Vec<(ClientId, ServeRequest)>,
        want: usize,
    ) {
        for _ in 0..2000 {
            transport.poll(out).unwrap();
            if out.len() >= want {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("requests never arrived: got {} of {want}", out.len());
    }

    #[test]
    fn requests_and_responses_round_trip_over_a_real_socket() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TcpClient::connect(addr).unwrap();
        client.send(&req(7)).unwrap();
        client.send(&req(8)).unwrap();

        let mut out = Vec::new();
        poll_until(&mut server, &mut out, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.id, 7);
        assert_eq!(out[1].1.id, 8);
        let cid = out[0].0;
        assert_eq!(out[1].0, cid, "same connection, same client id");

        // Echo back two frames; the blocking client reads them in order.
        let mut frame = Vec::new();
        scoop_types::append_rows_frame(
            7,
            &{
                let mut p = Vec::new();
                scoop_types::append_rows_payload(&[], &mut p);
                p
            },
            &mut frame,
        );
        server.deliver(cid, &frame).unwrap();
        let got = client.recv().unwrap();
        assert_eq!(got.id(), 7);

        // Unknown client delivery is a no-op, not an error.
        server.deliver(9999, &frame).unwrap();
    }

    #[test]
    fn malformed_frames_drop_the_connection_not_the_server() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mut bad = TcpStream::connect(addr).unwrap();
        // A frame whose length is not SERVE_REQUEST_LEN.
        bad.write_all(&3u32.to_le_bytes()).unwrap();
        bad.write_all(&[1, 2, 3]).unwrap();
        bad.flush().unwrap();

        let mut out = Vec::new();
        for _ in 0..2000 {
            server.poll(&mut out).unwrap();
            if server.connections() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(out.is_empty());
        assert_eq!(server.connections(), 0, "poisoned connection reaped");

        // The server still accepts and serves a well-formed client.
        let mut good = TcpClient::connect(addr).unwrap();
        good.send(&req(1)).unwrap();
        poll_until(&mut server, &mut out, 1);
        assert_eq!(out[0].1.id, 1);
    }
}
