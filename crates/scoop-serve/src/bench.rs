//! The load generator: millions of queries against one served network.
//!
//! `scoop-serve bench` drives a [`ServeServer`] over the in-memory transport
//! path as hard as the machine allows: every tick it submits a full admission
//! queue's worth of requests from `concurrency` independent deterministic
//! query streams, runs the tick, and measures each request's wall-clock
//! latency from submission to response-frame emission. Latency percentiles
//! are honest about batching — a request admitted early in a tick waits for
//! the whole tick, and that wait is in its number.
//!
//! Every response frame (including immediate `Overloaded` rejections) is
//! folded into an FNV-1a digest in emission order. Running the same options
//! with the cache off and on must produce the same digest; the `bench`
//! command does exactly that and refuses to report if the bytes differ, so
//! every published number doubles as a byte-identity proof.

use crate::core::CoreStats;
use crate::server::{ServeOptions, ServeServer};
use scoop_types::{
    append_overloaded_frame, ScenarioSpec, ScoopError, ServeRequest, SimDuration, SimTime,
};
use scoop_workload::QueryGenerator;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of one bench run.
#[derive(Clone)]
pub struct BenchOptions {
    /// The simulated network to serve.
    pub spec: ScenarioSpec,
    /// Simulated time per admission tick.
    pub tick: SimDuration,
    /// Admission queue bound (also the per-tick submission batch).
    pub queue_capacity: usize,
    /// Answer-cache entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// Total queries to complete.
    pub total_queries: u64,
    /// Independent client query streams submitting round-robin.
    pub concurrency: usize,
    /// Seed for the query streams (client `i` uses `seed + i`).
    pub seed: u64,
    /// Query time windows are snapped to multiples of this, so identical
    /// predicates recur across ticks and the cache genuinely engages.
    pub window_quantum: SimDuration,
}

impl BenchOptions {
    /// Paper-scale defaults: the 62-node network, 1-second ticks, a
    /// 1024-deep queue, 4096 cached answers, 1M queries from 32 streams.
    pub fn paper_scale() -> Self {
        BenchOptions {
            spec: ScenarioSpec::paper_defaults(),
            tick: SimDuration::from_secs(1),
            queue_capacity: 1024,
            cache_capacity: 4096,
            total_queries: 1_000_000,
            concurrency: 32,
            seed: 42,
            window_quantum: SimDuration::from_secs(30),
        }
    }
}

/// What one bench run measured.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Queries completed (answered + rejected); equals the requested total.
    pub total_queries: u64,
    /// Queries answered with rows.
    pub answered: u64,
    /// Queries rejected `Overloaded`.
    pub overloaded: u64,
    /// Admission ticks run.
    pub ticks: u64,
    /// Simulated time covered, in milliseconds.
    pub simulated_ms: u64,
    /// Wall-clock of the whole run, in seconds.
    pub wall_secs: f64,
    /// Completed queries per wall-clock second.
    pub qps: f64,
    /// Median request latency, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, in milliseconds.
    pub p99_ms: f64,
    /// FNV-1a digest over every response frame in emission order.
    pub digest: String,
    /// Readings drained from node buffers into the index.
    pub readings_drained: u64,
    /// Rows returned across all answers.
    pub rows_returned: u64,
    /// Unique predicates evaluated after coalescing.
    pub coalesced_groups: u64,
    /// Cache hits (0 when the cache is off).
    pub cache_hits: u64,
    /// Cache misses (also counts lookups with the cache off as 0).
    pub cache_misses: u64,
    /// Cache entries dropped by invalidation.
    pub cache_invalidated: u64,
}

/// Running FNV-1a 64 over frame bytes (same idiom as scoop-lab's config
/// hashes, so digests render recognizably as `fnv1a:<16 hex>`).
pub(crate) struct Digest(u64);

impl Digest {
    pub(crate) fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    pub(crate) fn render(&self) -> String {
        format!("fnv1a:{:016x}", self.0)
    }
}

/// Snaps a timestamp down to a multiple of `quantum`.
pub(crate) fn quantize(t: SimTime, quantum: SimDuration) -> SimTime {
    let q = quantum.as_millis().max(1);
    SimTime::from_millis((t.as_millis() / q) * q)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs one bench configuration to completion and reports.
pub fn run_bench(options: &BenchOptions) -> Result<BenchReport, ScoopError> {
    let mut serve = ServeOptions::new(options.spec.clone());
    serve.tick = options.tick;
    serve.queue_capacity = options.queue_capacity;
    serve.cache_capacity = options.cache_capacity;
    let mut server = ServeServer::new(serve)?;

    let concurrency = options.concurrency.max(1);
    let mut generators: Vec<QueryGenerator> = (0..concurrency)
        .map(|i| QueryGenerator::from_spec(&options.spec.workload, options.seed + i as u64))
        .collect();

    let total = options.total_queries;
    let mut starts: Vec<Instant> = Vec::with_capacity(total as usize);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(total as usize);
    let mut digest = Digest::new();
    let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut rejection = Vec::new();
    let mut overloaded = 0u64;
    let began = Instant::now();

    let mut submitted = 0u64;
    while submitted < total {
        let batch = (total - submitted).min(options.queue_capacity as u64);
        for _ in 0..batch {
            let client = (submitted % concurrency as u64) as usize;
            let q = generators[client].next_query(server.now());
            let req = ServeRequest {
                id: submitted,
                values: q.values,
                time_lo: quantize(q.time_lo, options.window_quantum),
                time_hi: quantize(q.time_hi, options.window_quantum),
            };
            starts.push(Instant::now());
            if let Err(over) = server.submit(client as u64, req) {
                // Rejections are responses too: digest the frame and count
                // the round trip, which completed immediately.
                rejection.clear();
                append_overloaded_frame(&over, &mut rejection);
                digest.fold(&rejection);
                latencies_ms.push(starts[submitted as usize].elapsed().as_secs_f64() * 1e3);
                overloaded += 1;
            }
            submitted += 1;
        }
        frames.clear();
        server.tick(&mut frames)?;
        for (_, frame) in &frames {
            digest.fold(frame);
            let id = u64::from_le_bytes(frame[0..8].try_into().expect("frame has an id"));
            latencies_ms.push(starts[id as usize].elapsed().as_secs_f64() * 1e3);
        }
    }

    let wall_secs = began.elapsed().as_secs_f64();
    latencies_ms.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let stats = *server.stats();
    let core: CoreStats = server.core_stats();
    Ok(BenchReport {
        total_queries: total,
        answered: stats.answered,
        overloaded,
        ticks: stats.ticks,
        simulated_ms: server.now().as_millis(),
        wall_secs,
        qps: if wall_secs > 0.0 {
            total as f64 / wall_secs
        } else {
            0.0
        },
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        digest: digest.render(),
        readings_drained: stats.readings_drained,
        rows_returned: core.rows_returned,
        coalesced_groups: stats.coalesced_groups,
        cache_hits: core.cache_hits,
        cache_misses: core.cache_misses,
        cache_invalidated: core.cache_invalidated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchOptions {
        let mut o = BenchOptions::paper_scale();
        o.spec = ScenarioSpec::small_test();
        o.total_queries = 3_000;
        o.queue_capacity = 256;
        o.concurrency = 4;
        // 12 ticks x 30 s = 360 simulated s, well past small_test's 2-minute
        // warmup, so answers carry real rows and depend on the predicates.
        o.tick = SimDuration::from_secs(30);
        // Windows stay put for 4 consecutive ticks, so repeated predicates
        // can genuinely hit the cache across ticks.
        o.window_quantum = SimDuration::from_secs(120);
        o
    }

    #[test]
    fn bench_completes_every_query_and_modes_are_byte_identical() {
        let mut uncached = tiny();
        uncached.cache_capacity = 0;
        let mut cached = tiny();
        cached.cache_capacity = 512;

        let a = run_bench(&uncached).unwrap();
        let b = run_bench(&cached).unwrap();
        assert_eq!(a.answered + a.overloaded, a.total_queries);
        assert_eq!(b.answered + b.overloaded, b.total_queries);
        assert_eq!(a.digest, b.digest, "cache must not change a single byte");
        assert_eq!(a.rows_returned, b.rows_returned);
        assert_eq!(a.cache_hits, 0, "uncached run has no cache");
        assert!(b.cache_hits > 0, "cached run actually hit the cache");
        assert!(a.p50_ms <= a.p99_ms);
    }

    #[test]
    fn bench_is_deterministic_per_seed() {
        let o = tiny();
        let a = run_bench(&o).unwrap();
        let b = run_bench(&o).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.readings_drained, b.readings_drained);
        let mut other = tiny();
        other.seed += 1;
        let c = run_bench(&other).unwrap();
        assert_ne!(a.digest, c.digest, "different streams, different bytes");
    }
}
