//! The server-side query index: every served reading, bucketed by value.
//!
//! The simulated network distributes readings across node flash according to
//! Scoop's storage index; the *server* additionally keeps one consolidated
//! view so external queries are answered at memory speed instead of at radio
//! speed. The structure mirrors the query shape: predicates are narrow value
//! ranges (1–5 % of the domain) with a time window, so readings live in one
//! `Vec` per value, each kept in canonical [`DurableRecord`] order — a query
//! binary-searches the few buckets its range touches and merges.

use scoop_types::{DurableRecord, Value, ValueRange};

/// Consolidated, value-bucketed view of every reading drained from the
/// simulated network (plus anything preloaded from a durable store).
pub struct ServeIndex {
    domain: ValueRange,
    /// One time-ordered bucket per domain value (`value - domain.lo`).
    /// Out-of-domain values (possible when a preloaded store was written
    /// under a different spec) go to `overflow`.
    buckets: Vec<Vec<DurableRecord>>,
    overflow: Vec<DurableRecord>,
    len: u64,
}

impl ServeIndex {
    /// An empty index over `domain`.
    pub fn new(domain: ValueRange) -> Self {
        let width = domain.width().max(1) as usize;
        ServeIndex {
            domain,
            buckets: (0..width).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Readings indexed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, value: Value) -> Option<usize> {
        if self.domain.contains(value) {
            Some((value - self.domain.lo) as usize)
        } else {
            None
        }
    }

    /// Inserts a batch, restoring per-bucket canonical order afterwards.
    ///
    /// Batches arrive once per server tick in node-id order, so a bucket's
    /// tail is usually *almost* sorted; `sort_unstable` on just the touched
    /// buckets keeps the cost proportional to the tick's new data.
    pub fn insert_batch(&mut self, records: &[DurableRecord]) {
        let mut touched: Vec<usize> = Vec::new();
        for rec in records {
            self.len += 1;
            match self.bucket_of(rec.value) {
                Some(b) => {
                    // `sorted` tracks whether the push kept the bucket
                    // ordered; only disordered buckets pay a sort.
                    let bucket = &mut self.buckets[b];
                    let was_ordered = bucket.last().map(|last| last <= rec).unwrap_or(true);
                    bucket.push(*rec);
                    if !was_ordered && !touched.contains(&b) {
                        touched.push(b);
                    }
                }
                None => {
                    let was_ordered = self.overflow.last().map(|last| last <= rec).unwrap_or(true);
                    self.overflow.push(*rec);
                    if !was_ordered && !touched.contains(&usize::MAX) {
                        touched.push(usize::MAX);
                    }
                }
            }
        }
        for b in touched {
            if b == usize::MAX {
                self.overflow.sort_unstable();
            } else {
                self.buckets[b].sort_unstable();
            }
        }
    }

    /// Appends every record matching `(values, [time_lo_ms, time_hi_ms])` to
    /// `out`, then sorts `out` into canonical global order. The time filter
    /// binary-searches each bucket (they are time-major sorted); the final
    /// sort merges the few touched buckets.
    pub fn query_into(
        &self,
        values: &ValueRange,
        time_lo_ms: u64,
        time_hi_ms: u64,
        out: &mut Vec<DurableRecord>,
    ) {
        let from = out.len();
        let clipped = match self.domain.intersect(values) {
            Some(r) => r,
            None => {
                // The whole range is outside the domain; only overflow
                // records (if any) can match.
                Self::scan_sorted(&self.overflow, values, time_lo_ms, time_hi_ms, out);
                out[from..].sort_unstable();
                return;
            }
        };
        for v in clipped.lo..=clipped.hi {
            let b = (v - self.domain.lo) as usize;
            Self::scan_sorted(&self.buckets[b], values, time_lo_ms, time_hi_ms, out);
        }
        if !self.overflow.is_empty() {
            Self::scan_sorted(&self.overflow, values, time_lo_ms, time_hi_ms, out);
        }
        out[from..].sort_unstable();
    }

    /// Pushes the slice of `bucket` within the time window (and value range,
    /// for the mixed-value overflow bucket) onto `out`.
    fn scan_sorted(
        bucket: &[DurableRecord],
        values: &ValueRange,
        time_lo_ms: u64,
        time_hi_ms: u64,
        out: &mut Vec<DurableRecord>,
    ) {
        let lo = bucket.partition_point(|r| r.time_ms < time_lo_ms);
        let hi = bucket.partition_point(|r| r.time_ms <= time_hi_ms);
        out.extend(
            bucket[lo..hi]
                .iter()
                .filter(|r| values.contains(r.value))
                .copied(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::NodeId;

    fn rec(time_ms: u64, node: u16, value: Value) -> DurableRecord {
        DurableRecord {
            time_ms,
            node: NodeId(node),
            attribute: 0,
            value,
        }
    }

    #[test]
    fn query_returns_canonical_order_across_buckets() {
        let mut idx = ServeIndex::new(ValueRange::new(0, 9));
        // Deliberately out of time order and across several values.
        idx.insert_batch(&[
            rec(30, 1, 3),
            rec(10, 2, 4),
            rec(20, 3, 3),
            rec(10, 1, 4),
            rec(40, 1, 5),
            rec(10, 1, 9),
        ]);
        assert_eq!(idx.len(), 6);

        let mut out = Vec::new();
        idx.query_into(&ValueRange::new(3, 4), 10, 30, &mut out);
        assert_eq!(
            out,
            vec![rec(10, 1, 4), rec(10, 2, 4), rec(20, 3, 3), rec(30, 1, 3)],
            "time-major canonical order, value 5/9 and t=40 excluded"
        );

        out.clear();
        idx.query_into(&ValueRange::new(9, 9), 0, 100, &mut out);
        assert_eq!(out, vec![rec(10, 1, 9)], "point query");
    }

    #[test]
    fn incremental_batches_equal_one_big_batch() {
        let records: Vec<DurableRecord> = (0..200)
            .map(|i| rec((i * 37) % 100, (i % 5) as u16, (i % 10) as Value))
            .collect();
        let mut one = ServeIndex::new(ValueRange::new(0, 9));
        one.insert_batch(&records);
        let mut many = ServeIndex::new(ValueRange::new(0, 9));
        for chunk in records.chunks(7) {
            many.insert_batch(chunk);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        one.query_into(&ValueRange::new(0, 9), 0, 100, &mut a);
        many.query_into(&ValueRange::new(0, 9), 0, 100, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn out_of_domain_records_are_kept_and_queryable() {
        let mut idx = ServeIndex::new(ValueRange::new(0, 4));
        idx.insert_batch(&[rec(10, 1, 2), rec(20, 1, 99), rec(5, 2, -3)]);
        assert_eq!(idx.len(), 3);
        let mut out = Vec::new();
        idx.query_into(&ValueRange::new(90, 100), 0, 100, &mut out);
        assert_eq!(out, vec![rec(20, 1, 99)], "query entirely outside domain");
        out.clear();
        idx.query_into(&ValueRange::new(-5, 2), 0, 100, &mut out);
        assert_eq!(out, vec![rec(5, 2, -3), rec(10, 1, 2)]);
    }

    #[test]
    fn time_window_is_inclusive_on_both_ends() {
        let mut idx = ServeIndex::new(ValueRange::new(0, 4));
        idx.insert_batch(&[rec(10, 1, 1), rec(20, 1, 1), rec(30, 1, 1)]);
        let mut out = Vec::new();
        idx.query_into(&ValueRange::new(1, 1), 10, 30, &mut out);
        assert_eq!(out.len(), 3);
        out.clear();
        idx.query_into(&ValueRange::new(1, 1), 11, 29, &mut out);
        assert_eq!(out, vec![rec(20, 1, 1)]);
    }
}
