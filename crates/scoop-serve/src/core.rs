//! The answering core: index + optional cache behind one byte-stable API.
//!
//! [`AnswerCore`] is the part of the server that turns a predicate into
//! response-payload bytes. It exists as its own type so the cache-equivalence
//! property — *any* interleaving of ingest and queries produces byte-identical
//! payloads with the cache on or off — can be tested directly against the
//! exact code path the server runs.

use crate::cache::{AnswerCache, TouchedValues};
use crate::index::ServeIndex;
use scoop_types::{
    append_rows_payload, AggregateSpec, DurableRecord, PartialAggregate, QueryPredicate, ValueRange,
};
use std::sync::Arc;

/// Counters the core accumulates across its life.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Predicates answered (after coalescing).
    pub answers: u64,
    /// Rows across all answers.
    pub rows_returned: u64,
    /// Readings ingested into the index.
    pub readings_indexed: u64,
    /// Answers served from the cache.
    pub cache_hits: u64,
    /// Answers that had to evaluate.
    pub cache_misses: u64,
    /// Cache entries dropped by new-reading invalidation.
    pub cache_invalidated: u64,
    /// Cache entries dropped by capacity eviction.
    pub cache_evicted: u64,
}

/// Index + optional answer cache; produces encoded rows payloads.
pub struct AnswerCore {
    domain: ValueRange,
    index: ServeIndex,
    cache: Option<AnswerCache>,
    touched: TouchedValues,
    scratch: Vec<DurableRecord>,
    rows_returned: u64,
    answers: u64,
}

impl AnswerCore {
    /// A core over `domain`. `cache_capacity` 0 disables the cache — the
    /// configuration the cached path is proven byte-identical against.
    pub fn new(domain: ValueRange, cache_capacity: usize) -> Self {
        AnswerCore {
            domain,
            index: ServeIndex::new(domain),
            cache: (cache_capacity > 0).then(|| AnswerCache::new(cache_capacity)),
            touched: TouchedValues::new(domain),
            scratch: Vec::new(),
            rows_returned: 0,
            answers: 0,
        }
    }

    /// Readings indexed so far.
    pub fn indexed(&self) -> u64 {
        self.index.len()
    }

    /// Ingests one tick's worth of new readings: indexes them and drops
    /// every cached answer they could have changed.
    pub fn ingest(&mut self, records: &[DurableRecord]) {
        if records.is_empty() {
            return;
        }
        self.index.insert_batch(records);
        if let Some(cache) = &mut self.cache {
            self.touched.clear();
            for rec in records {
                self.touched.record(rec.value, rec.time_ms);
            }
            cache.invalidate(&self.touched);
        }
    }

    /// The encoded rows payload answering `pred` — from the cache when
    /// possible, evaluated (and cached) otherwise. The bytes are identical
    /// either way; that is the cache's correctness contract.
    pub fn answer_payload(&mut self, pred: &QueryPredicate) -> Arc<Vec<u8>> {
        self.answers += 1;
        if let Some(cache) = &mut self.cache {
            if let Some(payload) = cache.get(pred) {
                // Row count is the payload's little-endian u32 prefix.
                let count =
                    u32::from_le_bytes(payload[0..4].try_into().expect("payload has a count"));
                self.rows_returned += count as u64;
                return payload;
            }
        }
        self.scratch.clear();
        self.index.query_into(
            &ValueRange::new(pred.value_lo, pred.value_hi),
            pred.time_lo_ms,
            pred.time_hi_ms,
            &mut self.scratch,
        );
        self.rows_returned += self.scratch.len() as u64;
        let mut payload = Vec::with_capacity(4 + self.scratch.len() * 16);
        append_rows_payload(&self.scratch, &mut payload);
        let payload = Arc::new(payload);
        if let Some(cache) = &mut self.cache {
            cache.insert(*pred, Arc::clone(&payload));
        }
        payload
    }

    /// The partial aggregate over every record matching `pred` — the serve
    /// twin of the in-network aggregation path. It evaluates over exactly
    /// the rows [`AnswerCore::answer_payload`] would return for the same
    /// predicate (same index, same scratch path), so an aggregate answer and
    /// a range answer can never disagree about which readings matched. The
    /// byte cache is not consulted: partials are tiny and derived, and their
    /// correctness is anchored to the row path, not to cached bytes.
    pub fn aggregate_answer(
        &mut self,
        pred: &QueryPredicate,
        spec: &AggregateSpec,
    ) -> PartialAggregate {
        self.scratch.clear();
        self.index.query_into(
            &ValueRange::new(pred.value_lo, pred.value_hi),
            pred.time_lo_ms,
            pred.time_hi_ms,
            &mut self.scratch,
        );
        let mut partial = PartialAggregate::for_spec(spec, self.domain);
        for rec in &self.scratch {
            partial.observe(rec.value);
        }
        partial
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CoreStats {
        let (hits, misses, invalidated, evicted) = match &self.cache {
            Some(c) => (c.hits, c.misses, c.invalidated, c.evicted),
            None => (0, 0, 0, 0),
        };
        CoreStats {
            answers: self.answers,
            rows_returned: self.rows_returned,
            readings_indexed: self.index.len(),
            cache_hits: hits,
            cache_misses: misses,
            cache_invalidated: invalidated,
            cache_evicted: evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::NodeId;

    fn rec(time_ms: u64, node: u16, value: i32) -> DurableRecord {
        DurableRecord {
            time_ms,
            node: NodeId(node),
            attribute: 0,
            value,
        }
    }

    fn pred(lo: i32, hi: i32, tlo: u64, thi: u64) -> QueryPredicate {
        QueryPredicate {
            value_lo: lo,
            value_hi: hi,
            time_lo_ms: tlo,
            time_hi_ms: thi,
        }
    }

    #[test]
    fn cache_hit_returns_the_same_bytes_and_counts_rows() {
        let domain = ValueRange::new(0, 9);
        let mut core = AnswerCore::new(domain, 64);
        core.ingest(&[rec(10, 1, 3), rec(20, 2, 3)]);
        let p = pred(3, 3, 0, 100);
        let first = core.answer_payload(&p);
        let second = core.answer_payload(&p);
        assert_eq!(first, second);
        let stats = core.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.rows_returned, 4, "both answers count their rows");
        assert_eq!(stats.answers, 2);
    }

    #[test]
    fn ingest_invalidates_and_the_new_answer_sees_new_rows() {
        let domain = ValueRange::new(0, 9);
        let mut core = AnswerCore::new(domain, 64);
        core.ingest(&[rec(10, 1, 5)]);
        let p = pred(5, 5, 0, 100);
        let before = core.answer_payload(&p);
        core.ingest(&[rec(50, 2, 5)]);
        let after = core.answer_payload(&p);
        assert_ne!(before, after, "stale answer must not survive ingest");
        assert_eq!(core.stats().cache_invalidated, 1);
        assert_eq!(core.stats().cache_misses, 2, "second answer re-evaluated");
    }

    #[test]
    fn cache_off_and_cache_on_agree_byte_for_byte() {
        let domain = ValueRange::new(0, 9);
        let mut on = AnswerCore::new(domain, 8);
        let mut off = AnswerCore::new(domain, 0);
        let batches = [
            vec![rec(10, 1, 2), rec(15, 2, 7)],
            vec![rec(20, 3, 2)],
            vec![],
            vec![rec(30, 1, 7), rec(30, 2, 2)],
        ];
        let preds = [pred(2, 2, 0, 100), pred(2, 7, 10, 30), pred(0, 9, 0, 0)];
        for batch in &batches {
            on.ingest(batch);
            off.ingest(batch);
            for p in &preds {
                // Ask twice so the second answer is a hot cache hit.
                assert_eq!(on.answer_payload(p), off.answer_payload(p));
                assert_eq!(on.answer_payload(p), off.answer_payload(p));
            }
        }
        assert!(on.stats().cache_hits > 0, "the cache actually engaged");
        assert_eq!(on.stats().rows_returned, off.stats().rows_returned);
    }

    #[test]
    fn aggregate_answer_matches_the_row_path() {
        use scoop_types::AggregateOp;
        let domain = ValueRange::new(0, 9);
        let mut core = AnswerCore::new(domain, 8);
        core.ingest(&[rec(10, 1, 2), rec(20, 2, 7), rec(30, 3, 4), rec(40, 1, 7)]);
        let p = pred(2, 7, 0, 35);
        let spec = AggregateSpec {
            op: AggregateOp::Quantile(0.5),
            epsilon: 0.05,
        };
        let partial = core.aggregate_answer(&p, &spec);
        // Matches {2, 7, 4}: same rows the payload path returns.
        assert_eq!(partial.count, 3);
        assert_eq!(partial.min, 2);
        assert_eq!(partial.max, 7);
        assert_eq!(partial.sum, 13);
        let payload = core.answer_payload(&p);
        let rows = u32::from_le_bytes(payload[0..4].try_into().unwrap());
        assert_eq!(rows as u64, partial.count);
        // The digest is present for quantile specs and tracks the stream.
        let digest = partial.digest.as_ref().expect("quantile carries a digest");
        assert_eq!(digest.count(), 3);
        // Min/max specs skip the digest entirely.
        let lean = core.aggregate_answer(
            &p,
            &AggregateSpec {
                op: AggregateOp::Min,
                epsilon: 0.05,
            },
        );
        assert!(lean.digest.is_none());
        assert_eq!(lean.answer(AggregateOp::Min), Some(2.0));
    }
}
