//! The transport seam between clients and a serving process.
//!
//! [`Transport`] is deliberately tiny: poll for whole decoded requests,
//! deliver whole encoded response frames. The in-memory implementation is the
//! default — hermetic and deterministic, which is what CI's golden smoke and
//! the byte-identity proofs run on. The TCP implementation (`tcp` module)
//! carries the same frames length-prefixed over a socket; nothing above the
//! trait can tell the difference, which is the point.

use scoop_types::{ScoopError, ServeRequest, ServeResponse};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identifies a connected client within one transport.
pub type ClientId = u64;

/// How requests reach the server and response frames leave it.
pub trait Transport {
    /// Drains every request that arrived since the last poll, in arrival
    /// order, as `(client, request)` pairs.
    fn poll(&mut self, out: &mut Vec<(ClientId, ServeRequest)>) -> Result<(), ScoopError>;

    /// Delivers one encoded response frame to `client`.
    fn deliver(&mut self, client: ClientId, frame: &[u8]) -> Result<(), ScoopError>;
}

#[derive(Default)]
struct HubInner {
    requests: Vec<(ClientId, ServeRequest)>,
    responses: HashMap<ClientId, Vec<Vec<u8>>>,
    next_client: ClientId,
}

/// The in-memory rendezvous between clients and the server half.
///
/// Clone-cheap handles: [`InMemoryHub::client`] mints client handles,
/// [`InMemoryHub::transport`] hands the server its [`Transport`]. Everything
/// is ordered: requests drain in submission order, responses per client in
/// delivery order, so a fixed submission schedule yields a fixed byte
/// stream.
#[derive(Clone, Default)]
pub struct InMemoryHub {
    inner: Arc<Mutex<HubInner>>,
}

impl InMemoryHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new client and returns its handle.
    pub fn client(&self) -> InMemoryClient {
        let mut inner = self.inner.lock().expect("hub lock");
        let id = inner.next_client;
        inner.next_client += 1;
        inner.responses.insert(id, Vec::new());
        InMemoryClient {
            id,
            inner: Arc::clone(&self.inner),
        }
    }

    /// The server-side transport for this hub.
    pub fn transport(&self) -> InMemoryTransport {
        InMemoryTransport {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A client handle on an [`InMemoryHub`].
pub struct InMemoryClient {
    id: ClientId,
    inner: Arc<Mutex<HubInner>>,
}

impl InMemoryClient {
    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Submits a request; it reaches the server at its next poll.
    pub fn submit(&self, req: ServeRequest) {
        self.inner
            .lock()
            .expect("hub lock")
            .requests
            .push((self.id, req));
    }

    /// Takes every raw response frame delivered to this client so far.
    pub fn drain_frames(&self) -> Vec<Vec<u8>> {
        let mut inner = self.inner.lock().expect("hub lock");
        inner
            .responses
            .get_mut(&self.id)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Takes and decodes every response delivered to this client so far.
    pub fn drain_responses(&self) -> Result<Vec<ServeResponse>, ScoopError> {
        self.drain_frames()
            .iter()
            .map(|f| ServeResponse::decode(f))
            .collect()
    }
}

/// The server half of an [`InMemoryHub`].
pub struct InMemoryTransport {
    inner: Arc<Mutex<HubInner>>,
}

impl Transport for InMemoryTransport {
    fn poll(&mut self, out: &mut Vec<(ClientId, ServeRequest)>) -> Result<(), ScoopError> {
        let mut inner = self.inner.lock().expect("hub lock");
        out.append(&mut inner.requests);
        Ok(())
    }

    fn deliver(&mut self, client: ClientId, frame: &[u8]) -> Result<(), ScoopError> {
        let mut inner = self.inner.lock().expect("hub lock");
        match inner.responses.get_mut(&client) {
            Some(frames) => {
                frames.push(frame.to_vec());
                Ok(())
            }
            None => Err(ScoopError::Simulation(format!(
                "in-memory transport: delivery to unknown client {client}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{Overloaded, SimTime, ValueRange};

    fn req(id: u64) -> ServeRequest {
        ServeRequest {
            id,
            values: ValueRange::new(0, 1),
            time_lo: SimTime::ZERO,
            time_hi: SimTime::from_secs(1),
        }
    }

    #[test]
    fn requests_drain_in_submission_order_across_clients() {
        let hub = InMemoryHub::new();
        let a = hub.client();
        let b = hub.client();
        a.submit(req(1));
        b.submit(req(2));
        a.submit(req(3));
        let mut transport = hub.transport();
        let mut out = Vec::new();
        transport.poll(&mut out).unwrap();
        assert_eq!(
            out.iter().map(|(c, r)| (*c, r.id)).collect::<Vec<_>>(),
            vec![(a.id(), 1), (b.id(), 2), (a.id(), 3)]
        );
        out.clear();
        transport.poll(&mut out).unwrap();
        assert!(out.is_empty(), "poll drains");
    }

    #[test]
    fn responses_route_to_their_client() {
        let hub = InMemoryHub::new();
        let a = hub.client();
        let b = hub.client();
        let mut transport = hub.transport();
        let mut frame = Vec::new();
        scoop_types::serve::append_overloaded_frame(
            &Overloaded {
                id: 5,
                queued: 1,
                capacity: 1,
            },
            &mut frame,
        );
        transport.deliver(b.id(), &frame).unwrap();
        assert!(a.drain_responses().unwrap().is_empty());
        let got = b.drain_responses().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id(), 5);
        assert!(b.drain_responses().unwrap().is_empty(), "drain takes");
        assert!(transport.deliver(999, &frame).is_err(), "unknown client");
    }
}
