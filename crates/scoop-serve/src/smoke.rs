//! The hermetic serve smoke CI runs on every push.
//!
//! A fixed seed, a fixed query mix (including one deliberate over-budget
//! burst), the in-memory transport, and the full `pump_once` serve cycle.
//! The run happens twice — cache off, then cache on — and refuses to report
//! unless both produced byte-identical response streams. Everything in the
//! resulting [`SmokeReport`] is a pure function of the options, so the report
//! is committed as a golden file and compared verbatim in CI.

use crate::bench::{quantize, Digest};
use crate::server::{pump_once, ServeOptions, ServeServer};
use crate::transport::{InMemoryClient, InMemoryHub};
use scoop_types::{ScenarioSpec, ScoopError, ServeRequest, ServeResponse, SimDuration};
use scoop_workload::QueryGenerator;
use serde::{Deserialize, Serialize};

/// Configuration of the smoke run (defaults are what CI uses).
#[derive(Clone)]
pub struct SmokeOptions {
    /// The simulated network (default: the scaled-down test scenario).
    pub spec: ScenarioSpec,
    /// Simulated time per tick.
    pub tick: SimDuration,
    /// Ticks to run.
    pub ticks: u64,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Cache entries in the cached pass.
    pub cache_capacity: usize,
    /// Queries submitted per tick (across both clients).
    pub queries_per_tick: usize,
    /// The tick that submits a deliberate over-budget burst.
    pub burst_tick: u64,
    /// Extra queries added at the burst tick (sized to overflow the queue).
    pub burst_extra: usize,
    /// Query stream seed.
    pub seed: u64,
    /// Query windows snap to multiples of this.
    pub window_quantum: SimDuration,
}

impl Default for SmokeOptions {
    fn default() -> Self {
        SmokeOptions {
            spec: ScenarioSpec::small_test(),
            tick: SimDuration::from_secs(30),
            ticks: 20,
            queue_capacity: 64,
            cache_capacity: 128,
            queries_per_tick: 40,
            burst_tick: 12,
            burst_extra: 80,
            seed: 7,
            window_quantum: SimDuration::from_secs(60),
        }
    }
}

/// The smoke run's deterministic outcome — the golden file's exact contents.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SmokeReport {
    /// FNV-1a digest over every response frame, identical in both passes.
    pub digest: String,
    /// Queries submitted.
    pub queries: u64,
    /// Queries answered with rows.
    pub answered: u64,
    /// Queries rejected `Overloaded` (the burst guarantees some).
    pub overloaded: u64,
    /// Rows across all answers.
    pub rows_returned: u64,
    /// Readings drained from node buffers into the index.
    pub readings_drained: u64,
    /// Ticks run.
    pub ticks: u64,
    /// Unique predicates evaluated in the cached pass.
    pub coalesced_groups: u64,
    /// Cache hits in the cached pass.
    pub cache_hits: u64,
    /// Cache misses in the cached pass.
    pub cache_misses: u64,
    /// Cache entries invalidated in the cached pass.
    pub cache_invalidated: u64,
}

struct ModeOutcome {
    digest: String,
    answered: u64,
    overloaded: u64,
    rows_returned: u64,
    readings_drained: u64,
    coalesced_groups: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidated: u64,
}

fn run_mode(options: &SmokeOptions, cache_capacity: usize) -> Result<ModeOutcome, ScoopError> {
    let mut serve = ServeOptions::new(options.spec.clone());
    serve.tick = options.tick;
    serve.queue_capacity = options.queue_capacity;
    serve.cache_capacity = cache_capacity;
    let mut server = ServeServer::new(serve)?;

    let hub = InMemoryHub::new();
    let clients: Vec<InMemoryClient> = (0..2).map(|_| hub.client()).collect();
    let mut generators: Vec<QueryGenerator> = (0..clients.len())
        .map(|i| QueryGenerator::from_spec(&options.spec.workload, options.seed + i as u64))
        .collect();
    let mut transport = hub.transport();

    let mut digest = Digest::new();
    let mut answered = 0u64;
    let mut overloaded = 0u64;
    let mut rows_returned = 0u64;
    let mut next_id = 0u64;
    let mut reqs = Vec::new();
    let mut frames = Vec::new();

    for tick in 0..options.ticks {
        let mut n = options.queries_per_tick;
        if tick == options.burst_tick {
            n += options.burst_extra;
        }
        for k in 0..n {
            let ci = k % clients.len();
            let q = generators[ci].next_query(server.now());
            clients[ci].submit(ServeRequest {
                id: next_id,
                values: q.values,
                time_lo: quantize(q.time_lo, options.window_quantum),
                time_hi: quantize(q.time_hi, options.window_quantum),
            });
            next_id += 1;
        }
        pump_once(&mut server, &mut transport, &mut reqs, &mut frames)?;
        // Per-client delivery order is FIFO and the client list is fixed, so
        // this fold order is deterministic.
        for client in &clients {
            for frame in client.drain_frames() {
                digest.fold(&frame);
                match ServeResponse::decode(&frame)? {
                    ServeResponse::Rows(r) => {
                        answered += 1;
                        rows_returned += r.rows.len() as u64;
                    }
                    ServeResponse::Overloaded(_) => overloaded += 1,
                }
            }
        }
    }

    let stats = *server.stats();
    let core = server.core_stats();
    Ok(ModeOutcome {
        digest: digest.render(),
        answered,
        overloaded,
        rows_returned,
        readings_drained: stats.readings_drained,
        coalesced_groups: stats.coalesced_groups,
        cache_hits: core.cache_hits,
        cache_misses: core.cache_misses,
        cache_invalidated: core.cache_invalidated,
    })
}

/// Runs the smoke twice (cache off, cache on), proves the response streams
/// byte-identical, and reports the cached pass's counters.
pub fn run_smoke(options: &SmokeOptions) -> Result<SmokeReport, ScoopError> {
    let uncached = run_mode(options, 0)?;
    let cached = run_mode(options, options.cache_capacity)?;
    if uncached.digest != cached.digest {
        return Err(ScoopError::Simulation(format!(
            "serve smoke: cached responses diverge from uncached \
             ({} vs {})",
            cached.digest, uncached.digest
        )));
    }
    let queries = options.ticks * options.queries_per_tick as u64 + options.burst_extra as u64;
    debug_assert_eq!(cached.answered + cached.overloaded, queries);
    Ok(SmokeReport {
        digest: cached.digest,
        queries,
        answered: cached.answered,
        overloaded: cached.overloaded,
        rows_returned: cached.rows_returned,
        readings_drained: cached.readings_drained,
        ticks: options.ticks,
        coalesced_groups: cached.coalesced_groups,
        cache_hits: cached.cache_hits,
        cache_misses: cached.cache_misses,
        cache_invalidated: cached.cache_invalidated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_deterministic_and_exercises_backpressure() {
        let options = SmokeOptions::default();
        let a = run_smoke(&options).unwrap();
        let b = run_smoke(&options).unwrap();
        assert_eq!(a, b, "two runs, identical reports");
        assert_eq!(a.answered + a.overloaded, a.queries);
        assert!(a.overloaded > 0, "the burst tick must overflow the queue");
        assert!(a.answered > 0);
        assert!(a.cache_hits > 0, "the quantized mix must hit the cache");
        assert!(a.readings_drained > 0, "the network kept producing data");
    }
}
